package dsm

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/wire"
)

// lazyEngineWithIntervals builds a 2-proc LI system in which node 0 has
// closed three write intervals (indices 0..2) on one page, and returns
// the engine, the page, and the three intervals' materialized diffs.
// The caller owns the returned cleanup via s.Close (deferred here).
func lazyEngineWithIntervals(t *testing.T) (*lazyEngine, mem.PageID, []*page.Diff) {
	t.Helper()
	s, err := New(Config{Procs: 2, SpaceSize: 8 * 1024, PageSize: 1024, Mode: LazyInvalidate})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	n := s.Node(0)
	const addr = mem.Addr(1024) // page 1
	for r := 0; r < 3; r++ {
		if err := n.Acquire(0); err != nil {
			t.Fatal(err)
		}
		if err := n.WriteUint64(addr+mem.Addr(8*r), uint64(100+r)); err != nil {
			t.Fatal(err)
		}
		if err := n.Release(0); err != nil {
			t.Fatal(err)
		}
	}
	e := n.rt.engines[LazyInvalidate].(*lazyEngine)
	pg := mem.PageID(1)
	var diffs []*page.Diff
	e.mu.Lock()
	defer e.mu.Unlock()
	for idx := int32(0); idx <= 2; idx++ {
		id := core.IntervalID{Proc: 0, Index: idx}
		slot := e.diffs[id][pg]
		if slot == nil {
			t.Fatalf("no retained slot for own interval %d", idx)
		}
		pmu := n.pageLock(pg)
		pmu.Lock()
		if slot.d == nil {
			e.materializeSlot(e.pages[pg], slot, pg)
		}
		d := slot.d
		pmu.Unlock()
		diffs = append(diffs, d)
	}
	return e, pg, diffs
}

// TestFlattenCacheRejectsGappedGroup: the e.flat cache is keyed by index
// range only, so a want-group with a gap (the requester already holds a
// middle interval's diff) must be re-checked against FlattenSafe and
// rejected — not served the full-membership merge a previous requester
// cached. Regression: the cache lookup used to run before the
// membership check, handing the gapped requester a merge whose middle
// bytes its separately-held diff would then overwrite.
func TestFlattenCacheRejectsGappedGroup(t *testing.T) {
	e, pg, diffs := lazyEngineWithIntervals(t)
	e.mu.Lock()
	defer e.mu.Unlock()
	full := []wire.Want{
		{Page: pg, Proc: 0, Index: 0},
		{Page: pg, Proc: 0, Index: 1},
		{Page: pg, Proc: 0, Index: 2},
	}
	if e.flattenGroupLocked(full, diffs) == nil {
		t.Fatal("full-membership group did not flatten")
	}
	if _, ok := e.flat[flatKey{pg: pg, first: 0, last: 2}]; !ok {
		t.Fatal("flatten did not populate the cache")
	}
	gapped := []wire.Want{full[0], full[2]}
	if got := e.flattenGroupLocked(gapped, []*page.Diff{diffs[0], diffs[2]}); got != nil {
		t.Error("gapped want-group was served the cached full-range merge")
	}
}

// TestFlatCacheBounded: with barrier GC disabled the runGC wholesale
// drop never runs, so inserting into a full e.flat must evict rather
// than grow without bound.
func TestFlatCacheBounded(t *testing.T) {
	e, pg, diffs := lazyEngineWithIntervals(t)
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := 0; i < flatCacheMax; i++ {
		e.flat[flatKey{pg: pg, first: int32(1000 + i), last: int32(2000 + i)}] = emptyDiff
	}
	tail := []wire.Want{
		{Page: pg, Proc: 0, Index: 1},
		{Page: pg, Proc: 0, Index: 2},
	}
	if e.flattenGroupLocked(tail, diffs[1:]) == nil {
		t.Fatal("tail group did not flatten")
	}
	if len(e.flat) > flatCacheMax {
		t.Errorf("flat cache grew to %d entries, cap is %d", len(e.flat), flatCacheMax)
	}
	if _, ok := e.flat[flatKey{pg: pg, first: 1, last: 2}]; !ok {
		t.Error("fresh merge was not cached after eviction")
	}
}

// TestStoreDiffRecsReplacesOnFlatGroup: when a flattened response group
// arrives and one of its slots already exists (the plain diff landed via
// an LU piggyback between the requester's plan and the store), the
// existing slot must be replaced so the stored group is exactly the
// group served. Regression: the unconditional never-replace rule kept
// the plain head (losing the merged members' bytes) or the plain member
// (re-applying its stale bytes over the head's merge).
func TestStoreDiffRecsReplacesOnFlatGroup(t *testing.T) {
	s, err := New(Config{Procs: 2, SpaceSize: 8 * 1024, PageSize: 1024, Mode: LazyInvalidate})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	e := s.Node(0).rt.engines[LazyInvalidate].(*lazyEngine)
	mkDiff := func(word int, val byte) *page.Diff {
		base := make([]byte, 1024)
		cur := append([]byte(nil), base...)
		cur[word*8] = val
		tw := page.NewTwin(base)
		d, err := page.MakeDiff(tw, cur)
		if err != nil {
			t.Fatal(err)
		}
		tw.Release()
		return d
	}
	pg := mem.PageID(0)
	slotOf := func(p mem.ProcID, idx int32) *diffSlot {
		return e.diffs[core.IntervalID{Proc: p, Index: idx}][pg]
	}
	preInsert := func(p mem.ProcID, idx int32, slot *diffSlot) {
		id := core.IntervalID{Proc: p, Index: idx}
		if e.diffs[id] == nil {
			e.diffs[id] = make(map[mem.PageID]*diffSlot)
		}
		e.diffs[id][pg] = slot
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	// Head pre-exists as a plain diff: the flat head must replace it.
	plainHead, flatHead := mkDiff(0, 1), mkDiff(0, 2)
	preInsert(1, 1, &diffSlot{d: plainHead})
	e.storeDiffRecsLocked([]wire.DiffRec{
		{Page: pg, Proc: 1, Index: 1, Diff: flatHead},
		{Page: pg, Proc: 1, Index: 2, Diff: emptyDiff},
	}, true)
	if got := slotOf(1, 1); got.d != flatHead || !got.flat {
		t.Errorf("head slot kept the piggybacked plain diff (d==flatHead=%t flat=%t)",
			got.d == flatHead, got.flat)
	}
	if got := slotOf(1, 2); got == nil || !got.d.Empty() || !got.flat {
		t.Errorf("member slot not stored as an empty flat record: %+v", got)
	}

	// Member pre-exists as a plain diff: the empty flat member must
	// replace it so it is not re-applied over the head's merged bytes.
	plainMember, flatHead2 := mkDiff(1, 3), mkDiff(1, 4)
	preInsert(1, 4, &diffSlot{d: plainMember})
	e.storeDiffRecsLocked([]wire.DiffRec{
		{Page: pg, Proc: 1, Index: 3, Diff: flatHead2},
		{Page: pg, Proc: 1, Index: 4, Diff: emptyDiff},
	}, true)
	if got := slotOf(1, 4); got.d == plainMember || !got.d.Empty() || !got.flat {
		t.Errorf("member slot kept the piggybacked plain diff (empty=%t flat=%t)",
			got.d.Empty(), got.flat)
	}

	// Records claiming this node's own intervals never replace: a forged
	// flat group must not clobber a deferred local slot.
	own := &diffSlot{base: page.NewTwin(make([]byte, 1024))}
	preInsert(0, 1, own)
	e.storeDiffRecsLocked([]wire.DiffRec{
		{Page: pg, Proc: 0, Index: 1, Diff: mkDiff(2, 5)},
		{Page: pg, Proc: 0, Index: 2, Diff: emptyDiff},
	}, true)
	if got := slotOf(0, 1); got != own || got.d != nil || got.base == nil {
		t.Error("forged flat group replaced a deferred local slot")
	}
}
