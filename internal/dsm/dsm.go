// Package dsm is a live software distributed shared memory runtime. Each
// node is driven by one application goroutine and one message-handler
// goroutine; nodes exchange real bytes (twins, diffs, write notices,
// vector clocks, invalidations, page ships) over a simulated reliable
// FIFO interconnect (internal/simnet) using the wire format of
// internal/wire.
//
// The consistency policy is pluggable: a protocol engine (see engine.go)
// owns page state, data movement and the consistency payload of
// synchronization messages, so the whole protocol matrix of the paper's
// evaluation runs live:
//
//   - LI / LU — lazy release consistency (§4): write notices ride lock
//     grants and barrier messages; LI invalidates at acquire and fetches
//     diffs at the next access miss, LU brings cached copies up to date
//     at acquire time. See lazyEngine.
//   - EI / EU — eager release consistency in the style of Munin's
//     write-shared protocol (§3): modifications are buffered until a
//     release or barrier and then pushed to every other cacher of each
//     dirty page — invalidations (EI) or diffs (EU) — before the release
//     completes. See eagerEngine.
//   - SC — a sequentially consistent Ivy-style baseline (§6): single
//     writer, write-invalidate, whole-page shipping with distributed
//     ownership transfer through each page's static home. See scEngine.
//
// Ordinary accesses are performed through an explicit Read/Write API
// rather than VM page protection: Go's runtime owns the process signal
// handling and heap, so access *detection* is by API call, which leaves
// the consistency protocol — the object of study — unchanged (see
// DESIGN.md, substitutions).
//
// Differences from the trace-driven simulator (internal/core et al.),
// chosen for correctness and simplicity over exact Table 1 message
// counts:
//
//   - lazy diffs are fetched from their *creators* (who always retain
//     them until garbage collection) rather than from hb-maximal
//     modifiers, and interval records on the wire carry their vector
//     timestamps;
//   - eager flushes issue one message exchange per (page, cacher) rather
//     than merging all traffic to one destination into a single message.
//
// The simulator remains the artifact that reproduces the paper's counts;
// this runtime is the artifact that proves each protocol moves the right
// bytes: its tests check that properly-synchronized programs observe
// exactly the values the consistency model promises.
package dsm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/simnet"
)

// Mode selects the consistency protocol a System runs.
type Mode int

const (
	// LazyInvalidate is the LI protocol (§4.3.2).
	LazyInvalidate Mode = iota
	// LazyUpdate is the LU protocol (§4.3.2).
	LazyUpdate
	// EagerInvalidate is the EI protocol (§3, Munin write-shared with
	// release-time invalidations).
	EagerInvalidate
	// EagerUpdate is the EU protocol (§3, release-time diff propagation).
	EagerUpdate
	// SeqConsistent is the SC baseline (§6, Ivy-style single-writer
	// write-invalidate).
	SeqConsistent
)

// Modes lists every supported mode in the paper's presentation order.
// It is the single source of truth for mode parsing, validation and
// flag documentation.
var Modes = []Mode{LazyInvalidate, LazyUpdate, EagerInvalidate, EagerUpdate, SeqConsistent}

var modeNames = map[Mode]string{
	LazyInvalidate:  "LI",
	LazyUpdate:      "LU",
	EagerInvalidate: "EI",
	EagerUpdate:     "EU",
	SeqConsistent:   "SC",
}

// String returns the mode's protocol name, matching the trace simulator's
// protocol naming (sim.Run accepts the same strings).
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Valid reports whether m names a supported protocol.
func (m Mode) Valid() bool {
	_, ok := modeNames[m]
	return ok
}

// ModeNames returns the supported protocol names, comma-separated, for
// error messages and flag help.
func ModeNames() string {
	names := make([]string, len(Modes))
	for i, m := range Modes {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}

// ParseMode maps a protocol name ("LI", "LU", "EI", "EU", "SC") to its
// Mode. The error enumerates the supported set.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes {
		if modeNames[m] == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("dsm: unknown mode %q (supported: %s)", s, ModeNames())
}

// Config describes a DSM instance.
type Config struct {
	// Procs is the number of nodes (at most 64).
	Procs int
	// SpaceSize is the shared address space size in bytes.
	SpaceSize mem.Addr
	// PageSize is the consistency granularity (a power of two).
	PageSize int
	// Mode selects the consistency protocol (LI, LU, EI, EU or SC).
	Mode Mode
	// GCEveryBarriers enables interval/diff garbage collection every k-th
	// barrier episode (0 disables GC). GC validates every cached page,
	// then discards the diffs of intervals covered by the barrier's
	// merged clock, bounding memory (TreadMarks-style). Only the lazy
	// protocols retain diffs; the eager and SC engines ignore it.
	GCEveryBarriers int
	// Latency configures the interconnect's time model (zero value uses
	// simnet.DefaultLatency).
	Latency simnet.LatencyModel
}

// System is a running DSM instance: Config.Procs nodes over one
// interconnect.
type System struct {
	cfg    Config
	layout *mem.Layout
	net    *simnet.Network
	nodes  []*Node

	handlers  sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// New builds and starts a DSM. Callers drive each node from exactly one
// goroutine (Node methods are not reentrant across goroutines) and must
// Close the system when done.
func New(cfg Config) (*System, error) {
	if cfg.Procs <= 0 || cfg.Procs > 64 {
		return nil, fmt.Errorf("dsm: processor count %d outside [1,64]", cfg.Procs)
	}
	if !cfg.Mode.Valid() {
		return nil, fmt.Errorf("dsm: unknown mode %d (supported: %s)", int(cfg.Mode), ModeNames())
	}
	layout, err := mem.NewLayout(cfg.SpaceSize, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	var opts []simnet.Option
	if cfg.Latency != (simnet.LatencyModel{}) {
		opts = append(opts, simnet.WithLatency(cfg.Latency))
	}
	s := &System{
		cfg:    cfg,
		layout: layout,
		net:    simnet.New(cfg.Procs, opts...),
		nodes:  make([]*Node, cfg.Procs),
	}
	for i := range s.nodes {
		s.nodes[i] = newNode(s, mem.ProcID(i))
	}
	for _, n := range s.nodes {
		s.handlers.Add(1)
		go func(n *Node) {
			defer s.handlers.Done()
			n.handlerLoop()
		}(n)
	}
	return s, nil
}

// Node returns node i's handle.
func (s *System) Node(i int) *Node { return s.nodes[i] }

// NumProcs returns the node count.
func (s *System) NumProcs() int { return s.cfg.Procs }

// Mode returns the protocol the system runs.
func (s *System) Mode() Mode { return s.cfg.Mode }

// Layout returns the address-space layout.
func (s *System) Layout() *mem.Layout { return s.layout }

// NetStats returns the interconnect's global message/byte counters.
func (s *System) NetStats() simnet.Stats { return s.net.Totals() }

// EstimateTime applies the latency model to the traffic so far.
func (s *System) EstimateTime() time.Duration {
	return s.net.EstimateTime()
}

// Close shuts the interconnect down and surfaces any protocol send error
// the handler goroutines recorded while the system ran (a lock grant or
// protocol response that could not be delivered would otherwise strand
// its requester silently). Nodes blocked in protocol operations return
// errors. Close is idempotent; every call returns the same error.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		s.net.Close()
		s.handlers.Wait()
		var errs []error
		for _, n := range s.nodes {
			errs = append(errs, n.takeErrs()...)
		}
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// home returns the home node of a page: the static directory entry for
// the eager and SC engines, and the cold-copy server for the lazy ones.
func (s *System) home(pg mem.PageID) mem.ProcID {
	return mem.ProcID(int(pg) % s.cfg.Procs)
}

// lockMgr returns the manager node of a lock.
func (s *System) lockMgr(l mem.LockID) mem.ProcID {
	return mem.ProcID(int(l) % s.cfg.Procs)
}
