// Package dsm is a live software distributed shared memory runtime. Each
// node is driven by any number of concurrent application goroutines
// (Config.GoroutinesPerNode sizes the barrier rendezvous) and serves
// incoming protocol frames through a dispatch loop feeding a worker
// pool that serializes per-page work; nodes exchange real bytes (twins,
// diffs, write notices, vector clocks, invalidations, page ships) over
// a pluggable reliable FIFO interconnect (internal/transport) using the
// wire format of internal/wire.
//
// Node state is sharded for concurrency: per-page protocol state lives
// under a striped lock table keyed by page id, statistics are atomic
// counters, and the distributed lock/barrier machinery two-levels local
// goroutines in front of the node's single protocol identity — so
// independent pages fault, install and diff in parallel, on both the
// application side and the handler side.
//
// The consistency policy is pluggable: a protocol engine (see engine.go)
// owns page state, data movement and the consistency payload of
// synchronization messages, so the whole protocol matrix of the paper's
// evaluation runs live:
//
//   - LI / LU — lazy release consistency (§4): write notices ride lock
//     grants and barrier messages; LI invalidates at acquire and fetches
//     diffs at the next access miss, LU brings cached copies up to date
//     at acquire time. See lazyEngine.
//   - EI / EU — eager release consistency in the style of Munin's
//     write-shared protocol (§3): modifications are buffered until a
//     release or barrier and then pushed to every other cacher of each
//     dirty page — invalidations (EI) or diffs (EU) — before the release
//     completes. See eagerEngine.
//   - SC — a sequentially consistent Ivy-style baseline (§6): single
//     writer, write-invalidate, whole-page shipping with distributed
//     ownership transfer through each page's static home. See scEngine.
//
// The interconnect is equally pluggable (Config.Transport): the default
// is the simulated in-process network (internal/simnet, the paper's §5.1
// assumptions), and internal/transport/tcp runs the same protocols over
// real length-prefixed TCP streams, one endpoint per OS process. A
// System hosts the nodes local to its transport instance; with the
// default transport that is the whole cluster.
//
// Ordinary accesses are performed through an explicit Read/Write API
// rather than VM page protection: Go's runtime owns the process signal
// handling and heap, so access *detection* is by API call, which leaves
// the consistency protocol — the object of study — unchanged (see
// DESIGN.md, substitutions). The typed layer applications program
// against (allocator, Var/Array handles, lock and barrier objects) is
// internal/shm.
//
// Differences from the trace-driven simulator (internal/core et al.),
// chosen for correctness and simplicity over exact Table 1 message
// counts:
//
//   - lazy diffs are fetched from their *creators* (who always retain
//     them until garbage collection) rather than from hb-maximal
//     modifiers, and interval records on the wire carry their vector
//     timestamps;
//   - eager flushes issue one message exchange per (page, cacher) rather
//     than merging all traffic to one destination into a single message
//     (the outbox does coalesce same-destination messages into shared
//     batch frames — see outbox.go — but that changes physical framing
//     only, never the message counts the paper compares).
//
// The simulator remains the artifact that reproduces the paper's counts;
// this runtime is the artifact that proves each protocol moves the right
// bytes: its tests check that properly-synchronized programs observe
// exactly the values the consistency model promises.
package dsm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/transport"
)

// Transport is the interconnect abstraction the runtime runs over; see
// internal/transport. The in-process simnet is the default; the TCP
// transport spans OS processes.
type Transport = transport.Transport

// TransportStats is a snapshot of interconnect traffic counters.
type TransportStats = transport.Stats

// LatencyModel estimates communication time from message/byte counts.
type LatencyModel = transport.LatencyModel

// ErrClosed is the shutdown error protocol operations wrap after the
// interconnect closes.
var ErrClosed = transport.ErrClosed

// ErrRPCTimeout is wrapped by protocol operations that waited
// Config.RPCTimeout for a remote response (or a rendezvous arrival)
// that never came — the liveness backstop under the fail-stop model: a
// dead or partitioned peer turns into a descriptive error instead of a
// hang. It never wraps ErrClosed, so callers can tell a hung peer from
// a clean teardown.
var ErrRPCTimeout = errors.New("dsm: rpc timeout")

// Mode selects the consistency protocol a System runs.
type Mode int

const (
	// LazyInvalidate is the LI protocol (§4.3.2).
	LazyInvalidate Mode = iota
	// LazyUpdate is the LU protocol (§4.3.2).
	LazyUpdate
	// EagerInvalidate is the EI protocol (§3, Munin write-shared with
	// release-time invalidations).
	EagerInvalidate
	// EagerUpdate is the EU protocol (§3, release-time diff propagation).
	EagerUpdate
	// SeqConsistent is the SC baseline (§6, Ivy-style single-writer
	// write-invalidate).
	SeqConsistent
)

// Modes lists every supported mode in the paper's presentation order.
// It is the single source of truth for mode parsing, validation and
// flag documentation.
var Modes = []Mode{LazyInvalidate, LazyUpdate, EagerInvalidate, EagerUpdate, SeqConsistent}

var modeNames = map[Mode]string{
	LazyInvalidate:  "LI",
	LazyUpdate:      "LU",
	EagerInvalidate: "EI",
	EagerUpdate:     "EU",
	SeqConsistent:   "SC",
}

// String returns the mode's protocol name, matching the trace simulator's
// protocol naming (sim.Run accepts the same strings).
func (m Mode) String() string {
	if s, ok := modeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Valid reports whether m names a supported protocol.
func (m Mode) Valid() bool {
	_, ok := modeNames[m]
	return ok
}

// ModeNames returns the supported protocol names, comma-separated, for
// error messages and flag help.
func ModeNames() string {
	names := make([]string, len(Modes))
	for i, m := range Modes {
		names[i] = m.String()
	}
	return strings.Join(names, ", ")
}

// ParseMode maps a protocol name ("LI", "LU", "EI", "EU", "SC") to its
// Mode. The error enumerates the supported set.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes {
		if modeNames[m] == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("dsm: unknown mode %q (supported: %s)", s, ModeNames())
}

// FlushPolicy tunes when the outbox flushes a destination's staged
// messages, beyond the structural flush points (immediate sends, rpc
// bursts, shard-worker drains). The zero value changes nothing.
//
// MaxMsgs and MaxBytes cap how much may sit staged: crossing either
// threshold flushes the destination immediately, bounding both batch
// size and staging memory. Delay adds a Nagle-style bounded hold on the
// requester side of an rpc: instead of flushing its request at once,
// the requester (which is about to block for the response anyway)
// holds the destination open for up to Delay so concurrent traffic
// from other goroutines on the same node — the gpn>1 pattern —
// coalesces into the same frame. The hold ends early when a threshold
// trips, when another flusher empties the destination, or at shutdown;
// the requester then flushes its own destination, so the outbox's
// sticky-error routing (a failed flush surfaces to whoever staged for
// the destination) is preserved.
type FlushPolicy struct {
	// MaxMsgs flushes a destination as soon as this many messages are
	// staged for it (0 = no message threshold). 1 makes every stage
	// flush immediately.
	MaxMsgs int
	// MaxBytes flushes a destination as soon as its staged messages'
	// estimated encoded size reaches this many bytes (0 = no byte
	// threshold).
	MaxBytes int
	// Delay is the Nagle-style bound on the requester-side hold
	// described above (0 = requests flush immediately, today's
	// behavior).
	Delay time.Duration
}

// active reports whether any policy knob is set.
func (p FlushPolicy) active() bool {
	return p.MaxMsgs > 0 || p.MaxBytes > 0 || p.Delay > 0
}

// Config describes a DSM instance.
type Config struct {
	// Procs is the number of nodes (at most 64).
	Procs int
	// SpaceSize is the shared address space size in bytes.
	SpaceSize mem.Addr
	// PageSize is the consistency granularity (a power of two).
	PageSize int
	// Mode selects the consistency protocol (LI, LU, EI, EU or SC) for
	// every page not assigned otherwise by ModeMap.
	Mode Mode
	// ModeMap assigns a protocol per page (index = page id): engines for
	// every distinct mode coexist in each node and the router dispatches
	// page accesses, handler traffic and synchronization payloads to the
	// engine owning each page. Nil runs every page under Mode. Non-nil
	// maps must cover exactly the layout's pages with valid modes (build
	// one from the textual syntax with ParseModeMap). Every node of a
	// cluster must be configured with the same map.
	ModeMap []Mode
	// Placement selects the initial page→home assignment: block (the
	// pg % Procs interleave, the default), rr (contiguous 4-page runs
	// dealt round-robin) or first-touch (homes re-assigned at the first
	// cluster barrier to the node that touched each page most). Every
	// node of a cluster must be configured with the same policy; build
	// one from the textual flag syntax with ParsePlacement. See
	// placement.go.
	Placement Placement
	// MigrateHomes enables dynamic home migration: on every adaptive
	// classification epoch (so AdaptEveryBarriers must be > 0) the
	// barrier master additionally re-homes pages to their dominant
	// writer — with hysteresis, so homes don't ping-pong — and the home
	// deltas ride the barrier exit beside the re-route set, applied in
	// the same quiescent rendezvous. A flush or directory transaction
	// that lands on a local home is loopback and costs no messages,
	// which is what migration buys.
	MigrateHomes bool
	// AdaptEveryBarriers enables the adaptive classifier: every k-th
	// cluster barrier, per-page access counters from all nodes are
	// aggregated at the barrier master, each page's sharing pattern is
	// classified (private / single-writer / migratory / falsely-shared)
	// and pages are re-routed to the protocol that pattern favors. The
	// mode table stays cluster-agreed: re-routes are decided by the
	// master, distributed in the barrier exit, and applied by every node
	// in a dedicated rendezvous before any application access resumes.
	// 0 disables adaptation; the initial table is Mode/ModeMap either
	// way.
	AdaptEveryBarriers int
	// GCEveryBarriers enables interval/diff garbage collection every k-th
	// barrier episode (0 disables GC). GC validates every cached page,
	// then discards the diffs of intervals covered by the barrier's
	// merged clock, bounding memory (TreadMarks-style). Only the lazy
	// protocols retain diffs; the eager and SC engines ignore it.
	GCEveryBarriers int
	// EagerDiffs makes the lazy engines compute each interval's diffs at
	// interval close (the pre-lazy behavior) instead of deferring
	// creation to the first serve. Message counts and memory images are
	// identical either way — the toggle exists so the lazy-creation win
	// is directly measurable (TestLazyDiffCreationGate compares the two).
	EagerDiffs bool
	// GoroutinesPerNode is the number of application goroutines that
	// drive each node (0 and 1 mean one). Node methods are safe for
	// concurrent use regardless; the knob sizes Node.Barrier's local
	// rendezvous: all GoroutinesPerNode goroutines of a node must arrive
	// at a barrier before the node arrives at the cluster barrier, and
	// all are released when the cluster barrier completes. Locks contend
	// node-locally by handoff (no extra protocol traffic).
	GoroutinesPerNode int
	// Latency configures the interconnect's time model for EstimateTime
	// (zero value uses transport.DefaultLatency).
	Latency LatencyModel
	// NoBatch disables the outbox's frame coalescing: every protocol
	// message travels as its own physical frame, as the pre-outbox
	// runtime sent them. Protocol behavior and message counts are
	// identical either way — the knob exists so benchmarks can report
	// batched vs unbatched frame counts and wire-time estimates.
	// NoBatch also disables Flush and CompressMin below.
	NoBatch bool
	// Flush configures the outbox's flush policy engine (thresholds and
	// the Nagle-style delay). The zero value keeps the structural flush
	// points only — today's immediate behavior. See FlushPolicy.
	Flush FlushPolicy
	// CompressMin enables frame compression: a built physical frame of
	// at least CompressMin bytes is flate-compressed and sent as a
	// wire.KCompressed frame when (and only when) that is strictly
	// smaller. 0 disables compression. Message counts and semantics are
	// unchanged; transport byte counters see post-compression sizes,
	// with the logical size in TransportStats.RawBytes.
	CompressMin int
	// Transport supplies the interconnect. Nil builds the default
	// in-process simulated network (internal/simnet) covering all Procs
	// endpoints. A non-nil transport must span exactly Procs endpoints;
	// the System hosts nodes for the transport's local endpoints only
	// (one per process under internal/transport/tcp). New takes
	// ownership either way: System.Close tears the transport down, and
	// a failed New closes it before returning.
	Transport Transport
	// RPCTimeout bounds every blocking wait on a remote peer — rpc
	// responses, and the master's barrier/GC/reclassification arrival
	// collection. When it elapses the operation fails wrapping
	// ErrRPCTimeout, so a peer that died mid-critical-section surfaces
	// as a descriptive System.Close error instead of hanging the run.
	// 0 disables the timeout (waits are unbounded, the pre-fault
	// behavior). Late responses that arrive after their waiter timed
	// out are classified as expected races (see System.ShutdownRaces).
	RPCTimeout time.Duration
	// Metrics, when non-nil, publishes the runtime's live counters into
	// the registry: interconnect totals, every node's protocol and
	// per-kind traffic counters (as scrape-time callbacks over the
	// node's existing atomics — zero cost on the paths that tick them),
	// an rpc latency histogram per node, and a per-second traffic ring
	// readable through System.Status. Serve it with obs.StartServer.
	Metrics *obs.Registry
	// Tracer, when non-nil, records protocol events (sends, receives,
	// critical-section enter/exit, barrier episodes, adaptive
	// reclassifications) into its bounded ring, dumpable as Chrome
	// trace_event JSON. Nil disables tracing at one pointer check per
	// site.
	Tracer *obs.Tracer
}

// System is a running DSM instance: the nodes of one transport instance,
// covering all Config.Procs endpoints when the transport is the default
// in-process network.
type System struct {
	cfg    Config
	layout *mem.Layout
	tr     Transport
	nodes  []*Node // indexed by proc id; nil for endpoints hosted elsewhere
	local  []*Node // the nodes this System hosts, ascending id

	handlers  sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	// ring and stopSampler exist when Config.Metrics is set: a
	// per-second interconnect traffic ring and the goroutine feeding it.
	ring        *obs.TrafficRing
	stopSampler func()
	// races are the expected shutdown-race events Close collected and
	// classified away from its error (see ShutdownRaces).
	racesMu sync.Mutex
	races   []error
}

// New builds and starts a DSM. Node methods are safe for concurrent use
// from multiple goroutines (set GoroutinesPerNode when more than one
// uses barriers); callers must Close the system when done.
func New(cfg Config) (*System, error) {
	// New owns cfg.Transport from the first line: every error return
	// must close it, or a failed construction leaks the caller's
	// listeners and connections.
	fail := func(err error) (*System, error) {
		if cfg.Transport != nil {
			cfg.Transport.Close()
		}
		return nil, err
	}
	if cfg.Procs <= 0 || cfg.Procs > 64 {
		return fail(fmt.Errorf("dsm: processor count %d outside [1,64]", cfg.Procs))
	}
	if cfg.GoroutinesPerNode < 0 || cfg.GoroutinesPerNode > 4096 {
		return fail(fmt.Errorf("dsm: goroutines per node %d outside [0,4096]", cfg.GoroutinesPerNode))
	}
	if !cfg.Mode.Valid() {
		return fail(fmt.Errorf("dsm: unknown mode %d (supported: %s)", int(cfg.Mode), ModeNames()))
	}
	if cfg.Flush.MaxMsgs < 0 || cfg.Flush.MaxBytes < 0 || cfg.Flush.Delay < 0 {
		return fail(fmt.Errorf("dsm: negative flush policy %+v", cfg.Flush))
	}
	if cfg.CompressMin < 0 {
		return fail(fmt.Errorf("dsm: negative compression threshold %d", cfg.CompressMin))
	}
	if cfg.AdaptEveryBarriers < 0 {
		return fail(fmt.Errorf("dsm: negative adaptation interval %d", cfg.AdaptEveryBarriers))
	}
	if !cfg.Placement.Valid() {
		return fail(fmt.Errorf("dsm: unknown placement %d (supported: %s)", int(cfg.Placement), PlacementNames()))
	}
	if cfg.MigrateHomes && cfg.AdaptEveryBarriers <= 0 {
		return fail(errors.New("dsm: MigrateHomes needs AdaptEveryBarriers > 0 (migration decisions ride the adaptive exchange)"))
	}
	if cfg.RPCTimeout < 0 {
		return fail(fmt.Errorf("dsm: negative rpc timeout %v", cfg.RPCTimeout))
	}
	layout, err := mem.NewLayout(cfg.SpaceSize, cfg.PageSize)
	if err != nil {
		return fail(err)
	}
	if cfg.ModeMap != nil {
		if err := validModeMap(cfg.ModeMap, layout.NumPages()); err != nil {
			return fail(err)
		}
	}
	tr := cfg.Transport
	if tr == nil {
		tr = simnet.New(cfg.Procs)
	} else if n := tr.NumEndpoints(); n != cfg.Procs {
		return fail(fmt.Errorf("dsm: transport spans %d endpoints, config wants %d", n, cfg.Procs))
	}
	s := &System{
		cfg:    cfg,
		layout: layout,
		tr:     tr,
		nodes:  make([]*Node, cfg.Procs),
	}
	for _, id := range tr.Local() {
		if id < 0 || id >= cfg.Procs {
			return fail(fmt.Errorf("dsm: transport claims local endpoint %d outside [0,%d)", id, cfg.Procs))
		}
		n := newNode(s, mem.ProcID(id))
		s.nodes[id] = n
		s.local = append(s.local, n)
	}
	if len(s.local) == 0 {
		return fail(errors.New("dsm: transport serves no local endpoints"))
	}
	if cfg.Metrics != nil {
		s.registerMetrics(cfg.Metrics)
		s.ring = obs.NewTrafficRing(trafficRingLen)
		s.stopSampler = s.ring.SampleEvery(time.Second, func() obs.TrafficSample {
			t := s.tr.Totals()
			return obs.TrafficSample{Messages: t.Messages, Frames: t.Frames,
				Batches: t.Batches, Bytes: t.Bytes, RawBytes: t.RawBytes}
		})
	}
	for _, n := range s.local {
		n.start()
		s.handlers.Add(1)
		go func(n *Node) {
			defer s.handlers.Done()
			n.dispatchLoop()
		}(n)
	}
	return s, nil
}

// Node returns node i's handle. The node must be hosted by this System:
// with the default in-process transport every node is, while a
// cross-process transport hosts only its local endpoints (see Local).
func (s *System) Node(i int) *Node {
	n := s.nodes[i]
	if n == nil {
		panic(fmt.Sprintf("dsm: node %d is not hosted by this system (local nodes: %v)", i, s.tr.Local()))
	}
	return n
}

// Local returns the nodes this System hosts, in ascending id order.
func (s *System) Local() []*Node { return s.local }

// IsLocal reports whether node i is hosted by this System.
func (s *System) IsLocal(i int) bool {
	return i >= 0 && i < len(s.nodes) && s.nodes[i] != nil
}

// NumProcs returns the cluster-wide node count.
func (s *System) NumProcs() int { return s.cfg.Procs }

// Mode returns the protocol the system runs.
func (s *System) Mode() Mode { return s.cfg.Mode }

// Layout returns the address-space layout.
func (s *System) Layout() *mem.Layout { return s.layout }

// NetStats returns the interconnect's message/byte counters for this
// System's transport instance (the whole cluster under the default
// in-process transport, this process's sends under TCP).
func (s *System) NetStats() TransportStats { return s.tr.Totals() }

// latency returns the configured time model, defaulting like the
// pre-transport runtime did.
func (s *System) latency() LatencyModel {
	if s.cfg.Latency == (LatencyModel{}) {
		return transport.DefaultLatency
	}
	return s.cfg.Latency
}

// EstimateTime applies the latency model to the traffic so far. The
// fixed per-message cost is charged once per physical frame: a batch of
// coalesced messages pays it once, which is how the outbox's savings
// appear in simulated wire time.
func (s *System) EstimateTime() time.Duration {
	return s.latency().EstimateStats(s.tr.Totals())
}

// Close shuts the interconnect down and surfaces both any transport
// teardown error (a dead TCP peer's broken stream) and any protocol send
// error the handler goroutines recorded while the system ran (a lock
// grant or protocol response that could not be delivered would otherwise
// strand its requester silently). Nodes blocked in protocol operations
// return errors. Expected shutdown races — late responses to timed-out
// rpcs, messages racing the teardown — are classified away from the
// returned error and available through ShutdownRaces, so chaos tests
// can assert on fault causes without false positives. Close is
// idempotent; every call returns the same error.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		if s.stopSampler != nil {
			s.stopSampler()
		}
		var errs []error
		if err := s.tr.Close(); err != nil {
			errs = append(errs, fmt.Errorf("dsm: transport: %w", err))
		}
		s.handlers.Wait()
		var races []error
		for _, n := range s.local {
			errs = append(errs, n.takeErrs()...)
			races = append(races, n.takeRaces()...)
		}
		s.racesMu.Lock()
		s.races = races
		s.racesMu.Unlock()
		s.closeErr = errors.Join(errs...)
	})
	return s.closeErr
}

// ShutdownRaces returns the expected-race events Close classified away
// from its error: responses that arrived after their rpc timed out, and
// similar teardown races. Meaningful after Close; nil on a quiet run.
func (s *System) ShutdownRaces() []error {
	s.racesMu.Lock()
	defer s.racesMu.Unlock()
	return append([]error(nil), s.races...)
}

// The static per-page home function that lived here was retired by the
// placement refactor: a page's home is now Node.homeOf — a per-page
// table initialized by Config.Placement and re-written (under
// Config.MigrateHomes) inside the quiescent reclassification
// rendezvous. See placement.go and router.homeOf.

// lockMgr returns the manager node of a lock.
func (s *System) lockMgr(l mem.LockID) mem.ProcID {
	return mem.ProcID(int(l) % s.cfg.Procs)
}
