// Package dsm is a live software distributed shared memory runtime
// implementing lazy release consistency — the implementation the paper's
// §7 names as further work. Each node is driven by one application
// goroutine and one message-handler goroutine; nodes exchange real bytes
// (twins, diffs, write notices, vector clocks) over a simulated reliable
// FIFO interconnect (internal/simnet) using the wire format of
// internal/wire.
//
// Two data-movement modes are provided, mirroring §4.3.2: LazyInvalidate
// (LI — write notices invalidate cached pages at acquire time, diffs are
// fetched at the next access miss) and LazyUpdate (LU — cached pages are
// brought up to date at acquire time). Ordinary accesses are performed
// through an explicit Read/Write API rather than VM page protection: Go's
// runtime owns the process signal handling and heap, so access *detection*
// is by API call, which leaves the consistency protocol — the object of
// study — unchanged (see DESIGN.md, substitutions).
//
// Differences from the trace-driven simulator (internal/core), chosen for
// correctness and simplicity over exact Table 1 message counts:
//
//   - diffs are fetched from their *creators* (who always retain them
//     until garbage collection) rather than from hb-maximal modifiers;
//   - interval records on the wire carry their vector timestamps.
//
// The simulator remains the artifact that reproduces the paper's counts;
// this runtime is the artifact that proves the protocol moves the right
// bytes: its tests check that properly-synchronized programs observe
// exactly the values release consistency promises.
package dsm

import (
	"time"

	"fmt"

	"repro/internal/mem"
	"repro/internal/simnet"
)

// Mode selects the lazy data-movement policy (§4.3.2).
type Mode int

const (
	// LazyInvalidate is the LI protocol.
	LazyInvalidate Mode = iota
	// LazyUpdate is the LU protocol.
	LazyUpdate
)

// String returns the mode's protocol name.
func (m Mode) String() string {
	if m == LazyUpdate {
		return "LU"
	}
	return "LI"
}

// Config describes a DSM instance.
type Config struct {
	// Procs is the number of nodes (at most 64).
	Procs int
	// SpaceSize is the shared address space size in bytes.
	SpaceSize mem.Addr
	// PageSize is the consistency granularity (a power of two).
	PageSize int
	// Mode selects LI or LU.
	Mode Mode
	// GCEveryBarriers enables interval/diff garbage collection every k-th
	// barrier episode (0 disables GC). GC validates every cached page,
	// then discards the diffs of intervals covered by the barrier's
	// merged clock, bounding memory (TreadMarks-style).
	GCEveryBarriers int
	// Latency configures the interconnect's time model (zero value uses
	// simnet.DefaultLatency).
	Latency simnet.LatencyModel
}

// System is a running DSM instance: Config.Procs nodes over one
// interconnect.
type System struct {
	cfg    Config
	layout *mem.Layout
	net    *simnet.Network
	nodes  []*Node
}

// New builds and starts a DSM. Callers drive each node from exactly one
// goroutine (Node methods are not reentrant across goroutines) and must
// Close the system when done.
func New(cfg Config) (*System, error) {
	if cfg.Procs <= 0 || cfg.Procs > 64 {
		return nil, fmt.Errorf("dsm: processor count %d outside [1,64]", cfg.Procs)
	}
	layout, err := mem.NewLayout(cfg.SpaceSize, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	var opts []simnet.Option
	if cfg.Latency != (simnet.LatencyModel{}) {
		opts = append(opts, simnet.WithLatency(cfg.Latency))
	}
	s := &System{
		cfg:    cfg,
		layout: layout,
		net:    simnet.New(cfg.Procs, opts...),
		nodes:  make([]*Node, cfg.Procs),
	}
	for i := range s.nodes {
		s.nodes[i] = newNode(s, mem.ProcID(i))
	}
	for _, n := range s.nodes {
		go n.handlerLoop()
	}
	return s, nil
}

// Node returns node i's handle.
func (s *System) Node(i int) *Node { return s.nodes[i] }

// NumProcs returns the node count.
func (s *System) NumProcs() int { return s.cfg.Procs }

// Layout returns the address-space layout.
func (s *System) Layout() *mem.Layout { return s.layout }

// NetStats returns the interconnect's global message/byte counters.
func (s *System) NetStats() simnet.Stats { return s.net.Totals() }

// EstimateTime applies the latency model to the traffic so far.
func (s *System) EstimateTime() time.Duration {
	return s.net.EstimateTime()
}

// Close shuts the interconnect down. Nodes blocked in protocol operations
// return errors.
func (s *System) Close() { s.net.Close() }

// home returns the home node of a page (static distribution, as in the
// simulator's directory).
func (s *System) home(pg mem.PageID) mem.ProcID {
	return mem.ProcID(int(pg) % s.cfg.Procs)
}

// lockMgr returns the manager node of a lock.
func (s *System) lockMgr(l mem.LockID) mem.ProcID {
	return mem.ProcID(int(l) % s.cfg.Procs)
}
