package dsm

import (
	"fmt"
	"sync"

	"repro/internal/mem"
	"repro/internal/vc"
	"repro/internal/wire"
)

// scEngine implements the sequentially consistent Ivy-style baseline
// (paper §6 related work): single writer, write-invalidate, whole-page
// shipping. Each page has a static directory at its home tracking the
// owner and the copyset. A read miss joins the copyset with a read-only
// copy fetched from the owner (which downgrades to read mode); a write
// requires exclusive ownership — the home invalidates every other copy,
// each invalidation acknowledged, and transfers ownership to the writer.
// Locks and barriers cost the same messages as under the RC protocols
// but carry no consistency payload.
//
// Ordering: the home holds the page's directory mutex across each
// transaction, including every send, so the transport's FIFO delivery
// plus the receiver's per-page shard queue present each node the
// directory's decisions in order. Page installs happen on the page's
// *shard worker* as the grant arrives — never on the application
// goroutine after a wakeup — so a node's page state always reflects the
// directory-order prefix it has received, and an owner can always serve
// a fetch.
//
// The access that missed completes at install time too, on the shard
// worker, while the granted copy is still current in directory order —
// before any later invalidation or fetch for that page can be
// processed. Completing it on the application goroutine after the rpc
// wakeup instead (the obvious structure) re-opens a window in which a
// concurrent writer's revocation lands first; re-checking and
// re-requesting is correct but livelocks into page ping-pong under
// contention once the transport has real latency: over TCP, two writers
// of one page can burn millions of whole-page ships making no progress.
// With install-time completion a miss costs exactly one directory
// transaction — Ivy's per-access cost that the paper's Table 1
// quantifies.
//
// Concurrency: page copies and the per-page pending-miss slot are
// guarded by the node's striped lock table; miss service serializes per
// page under the miss lock, so at most one miss per page is in flight
// per node and concurrent faulting goroutines coalesce behind it.
type scEngine struct {
	n *Node

	// pages[i] and pending[i] are guarded by n.pageLock(i). pending[i]
	// is the one in-flight miss for page i (the miss lock admits at most
	// one), completed by install on the page's shard worker.
	pages   []*scPage
	pending []*scMiss

	dir []scDir // directory entries; used only for pages homed here
}

// scMiss is one blocked access: dst non-nil for a read miss, src
// non-nil for a write miss.
type scMiss struct {
	pg   mem.PageID
	off  int
	dst  []byte
	src  []byte
	done bool
}

type scAccess uint8

const (
	scNone scAccess = iota
	scRead
	scWrite
)

type scPage struct {
	data []byte
	mode scAccess
}

// scDir is one page's directory entry at its home.
type scDir struct {
	mu      sync.Mutex
	owner   mem.ProcID
	copyset uint64
}

func newSCEngine(n *Node) *scEngine {
	e := &scEngine{
		n:       n,
		pages:   make([]*scPage, n.sys.layout.NumPages()),
		pending: make([]*scMiss, n.sys.layout.NumPages()),
		dir:     make([]scDir, n.sys.layout.NumPages()),
	}
	for pg := range e.dir {
		e.dir[pg].owner = n.homeOf(mem.PageID(pg))
	}
	return e
}

func (e *scEngine) clock() vc.VC { return vc.New(e.n.sys.cfg.Procs) }

// --- accesses ---

func (e *scEngine) readPage(pg mem.PageID, off int, dst []byte) error {
	return e.access(&scMiss{pg: pg, off: off, dst: dst}, wire.KPageReq)
}

func (e *scEngine) writePage(pg mem.PageID, off int, src []byte) error {
	return e.access(&scMiss{pg: pg, off: off, src: src}, wire.KWriteReq)
}

// tryLocal attempts the access against the local copy; caller holds the
// page stripe.
func (e *scEngine) tryLocal(miss *scMiss) bool {
	pc := e.pages[miss.pg]
	if pc == nil {
		return false
	}
	if miss.dst != nil && pc.mode >= scRead {
		copy(miss.dst, pc.data[miss.off:miss.off+len(miss.dst)])
		return true
	}
	if miss.src != nil && pc.mode == scWrite {
		copy(pc.data[miss.off:miss.off+len(miss.src)], miss.src)
		return true
	}
	return false
}

// access performs one read or write: against the local copy when its
// mode suffices, otherwise through one directory transaction at the
// home, with the blocked access completed by install when the grant
// arrives (see the livelock discussion on scEngine).
func (e *scEngine) access(miss *scMiss, kind wire.Kind) error {
	n := e.n
	pmu := n.pageLock(miss.pg)
	pmu.Lock()
	if e.tryLocal(miss) {
		pmu.Unlock()
		return nil
	}
	pmu.Unlock()

	mmu := n.missLock(miss.pg)
	mmu.Lock()
	defer mmu.Unlock()

	for {
		pmu.Lock()
		if e.tryLocal(miss) {
			pmu.Unlock()
			return nil
		}
		n.stats.accessMisses.Add(1)
		if e.pages[miss.pg] == nil {
			n.stats.coldMisses.Add(1)
		}
		e.pending[miss.pg] = miss
		pmu.Unlock()

		_, err := n.rpc(n.homeOf(miss.pg), &wire.Msg{
			Kind: kind, Seq: n.nextSeq(), A: int32(miss.pg), B: int32(n.id),
		})
		pmu.Lock()
		e.pending[miss.pg] = nil
		done := miss.done
		pmu.Unlock()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		// Unreachable with the current grants (every response installs a
		// sufficient copy); kept as a correct fallback.
	}
}

// --- lock and barrier hooks: SC needs no consistency payload ---

func (e *scEngine) acquireStart(req *wire.Msg)    {}
func (e *scEngine) grant(req, grant *wire.Msg)    {}
func (e *scEngine) onGrant(grant *wire.Msg) error { return nil }
func (e *scEngine) preRelease() error             { return nil }
func (e *scEngine) release()                      {}

// dropPage and adoptPage run only in the quiescent reclassification
// rendezvous; no access, miss or directory transaction for the page is
// in flight anywhere.
func (e *scEngine) dropPage(pg mem.PageID) {
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	e.pages[pg] = nil
	e.pending[pg] = nil
	pmu.Unlock()
	d := &e.dir[pg]
	d.mu.Lock()
	d.owner = e.n.homeOf(pg)
	d.copyset = 0
	d.mu.Unlock()
}

func (e *scEngine) adoptPage(pg mem.PageID, data []byte) {
	d := &e.dir[pg]
	d.mu.Lock()
	d.owner = e.n.homeOf(pg)
	d.copyset = 0
	d.mu.Unlock()
	if data == nil {
		// Non-home: miss through the home's directory on first use.
		return
	}
	pmu := e.n.pageLock(pg)
	pmu.Lock()
	e.pages[pg] = &scPage{data: append([]byte(nil), data...), mode: scWrite}
	pmu.Unlock()
	d.mu.Lock()
	d.copyset = 1 << uint(e.n.id)
	d.mu.Unlock()
}

func (e *scEngine) preBarrier() error                 { return nil }
func (e *scEngine) barrierEntry()                     {}
func (e *scEngine) arrive(arrive *wire.Msg)           {}
func (e *scEngine) masterAbsorb(m *wire.Msg)          {}
func (e *scEngine) exit(m, exit *wire.Msg)            {}
func (e *scEngine) onExit(exit *wire.Msg) error       { return nil }
func (e *scEngine) postBarrier(b mem.BarrierID) error { return nil }

// --- handler side ---

func (e *scEngine) handle(m *wire.Msg, src mem.ProcID) bool {
	switch m.Kind {
	case wire.KPageReq:
		go e.serveReadReq(m)
	case wire.KWriteReq:
		go e.serveWriteReq(m)
	case wire.KFetch:
		e.serveFetch(m, src)
	case wire.KInval:
		e.applyInval(m, src)
	case wire.KPageResp:
		// Intercepted response: install the read copy on the page's
		// shard worker, in directory order, before any later
		// invalidation can be processed. A rejected grant fails the
		// waiter instead (the cause is already in noteErr).
		if e.install(m, scRead) {
			e.n.deliverResponse(m)
		} else {
			e.n.failWaiter(m.Seq)
		}
	case wire.KWriteResp:
		if e.install(m, scWrite) {
			e.n.deliverResponse(m)
		} else {
			e.n.failWaiter(m.Seq)
		}
	default:
		return false
	}
	return true
}

// install applies a granted copy or upgrade at the requester, on the
// page's shard worker, and completes the blocked access against it
// while the grant is still current in directory order.
//
// Returns false (recording the cause) for a grant that cannot be
// installed — bad page id, wrong-size data, or an upgrade with no local
// copy — so the caller fails the waiter instead of waking it over
// nothing.
func (e *scEngine) install(m *wire.Msg, mode scAccess) bool {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) || (m.Data != nil && len(m.Data) != n.sys.layout.PageSize()) {
		n.noteErr("page install",
			fmt.Errorf("bad page grant: page %d, %d data bytes", pg, len(m.Data)))
		return false
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	defer pmu.Unlock()
	var pc *scPage
	if m.Data != nil {
		pc = &scPage{data: m.Data, mode: mode}
		e.pages[pg] = pc
		n.stats.pagesFetched.Add(1)
	} else {
		// Upgrade grant: the directory saw us in the copyset, so a current
		// read copy must be installed here (copyset membership without an
		// installed copy only exists while our own fetch is in flight, and
		// the miss lock admits one miss per page at a time). A grant that
		// violates that came from a confused or hostile peer — reject it.
		pc = e.pages[pg]
		if pc == nil {
			n.noteErr("page install",
				fmt.Errorf("upgrade grant for page %d without a local copy", pg))
			return false
		}
		pc.mode = mode
	}
	miss := e.pending[pg]
	if miss == nil || miss.done {
		return true
	}
	switch {
	case miss.dst != nil && pc.mode >= scRead:
		copy(miss.dst, pc.data[miss.off:miss.off+len(miss.dst)])
		miss.done = true
	case miss.src != nil && pc.mode == scWrite:
		copy(pc.data[miss.off:miss.off+len(miss.src)], miss.src)
		miss.done = true
	}
	return true
}

// ownerData obtains the current contents of pg from its owner via
// Node.fetchFromOwner (see there for the loopback ordering rule). The
// owner downgrades its copy to read mode as it serves: it may keep
// reading, but the next write must re-acquire exclusivity.
func (e *scEngine) ownerData(d *scDir, pg mem.PageID) ([]byte, error) {
	return e.n.fetchFromOwner(d.owner, pg)
}

// serveReadReq runs the home's read-miss transaction: the owner's data
// ships to the requester, which joins the copyset.
func (e *scEngine) serveReadReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	if !n.validPage(pg) || !n.validProc(requester) {
		n.noteErr("read request",
			fmt.Errorf("bad ids in request: page %d requester %d", pg, requester))
		return
	}
	d := &e.dir[pg]
	d.mu.Lock()
	defer d.mu.Unlock()
	data, err := e.ownerData(d, pg)
	if err != nil {
		n.noteErr(fmt.Sprintf("page %d owner fetch", pg), err)
		return
	}
	d.copyset |= 1 << uint(requester)
	resp := &wire.Msg{Kind: wire.KPageResp, Seq: m.Seq, A: m.A, Data: data}
	n.noteErr(fmt.Sprintf("page response to %d", requester), n.send(requester, resp))
}

// serveWriteReq runs the home's write-miss/upgrade transaction: data
// ships from the owner unless the requester already holds a current
// copy, every other copy is invalidated with acknowledgment, and
// ownership transfers to the writer.
func (e *scEngine) serveWriteReq(m *wire.Msg) {
	n := e.n
	pg := mem.PageID(m.A)
	requester := mem.ProcID(m.B)
	if !n.validPage(pg) || !n.validProc(requester) {
		n.noteErr("write request",
			fmt.Errorf("bad ids in request: page %d requester %d", pg, requester))
		return
	}
	d := &e.dir[pg]
	d.mu.Lock()
	defer d.mu.Unlock()

	resp := &wire.Msg{Kind: wire.KWriteResp, Seq: m.Seq, A: m.A}
	if d.copyset&(1<<uint(requester)) == 0 {
		data, err := e.ownerData(d, pg)
		if err != nil {
			n.noteErr(fmt.Sprintf("page %d owner fetch", pg), err)
			return
		}
		resp.Data = data
	}
	// Invalidate every other copy as one grouped burst: all requests
	// staged before a single flush, all acknowledgments awaited
	// concurrently (the directory lock is held across the exchange, so
	// ordering at each cacher is unchanged).
	others := d.copyset &^ (1 << uint(requester))
	var reqs []outMsg
	for q := 0; others != 0; q++ {
		bit := uint64(1) << uint(q)
		if others&bit == 0 {
			continue
		}
		others &^= bit
		reqs = append(reqs, outMsg{dst: mem.ProcID(q), m: &wire.Msg{
			Kind: wire.KInval, Seq: n.nextSeq(), A: m.A,
		}})
	}
	if len(reqs) > 0 {
		if _, err := n.rpcAll(reqs); err != nil {
			n.noteErr(fmt.Sprintf("invalidation fan-out for page %d", pg), err)
			return
		}
	}
	if d.owner != requester {
		d.owner = requester
		n.stats.ownershipMoves.Add(1)
	}
	d.copyset = 1 << uint(requester)

	n.noteErr(fmt.Sprintf("write grant to %d", requester), n.send(requester, resp))
}

// serveFetch answers the home's request for this owner's page contents,
// downgrading a writable copy to read mode. Runs inline on the page's
// shard worker.
func (e *scEngine) serveFetch(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) {
		n.noteErr("owner fetch", fmt.Errorf("fetch of invalid page %d", pg))
		return
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	pc := e.pages[pg]
	var data []byte
	switch {
	case pc == nil && n.homeOf(pg) == n.id:
		// We are the page's initial owner and nobody ever wrote it: the
		// committed state is the zero page.
		data = make([]byte, n.sys.layout.PageSize())
	case pc == nil:
		// The home thinks we own a page we never held — its directory and
		// our state disagree, which only a misbehaving (or hostile) peer
		// can cause. Drop the fetch; the record surfaces via Close.
		pmu.Unlock()
		n.noteErr("owner fetch", fmt.Errorf("fetch of page %d this node never held", pg))
		return
	default:
		if pc.mode == scWrite {
			pc.mode = scRead
		}
		data = append([]byte(nil), pc.data...)
	}
	pmu.Unlock()
	n.stage(src, &wire.Msg{Kind: wire.KFetchResp, Seq: m.Seq, A: m.A, Data: data})
}

// applyInval drops this node's copy.
func (e *scEngine) applyInval(m *wire.Msg, src mem.ProcID) {
	n := e.n
	pg := mem.PageID(m.A)
	if !n.validPage(pg) {
		n.noteErr("invalidate", fmt.Errorf("invalidation of invalid page %d", pg))
		return
	}
	pmu := n.pageLock(pg)
	pmu.Lock()
	if pc := e.pages[pg]; pc != nil {
		pc.mode = scNone
	}
	pmu.Unlock()
	n.stats.invalsReceived.Add(1)
	n.stage(src, &wire.Msg{Kind: wire.KInvalAck, Seq: m.Seq, A: m.A})
}
