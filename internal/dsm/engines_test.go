package dsm

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/mem"
)

// TestModeValidation: dsm.New accepts exactly the supported modes, and
// parsing/naming comes from one place.
func TestModeValidation(t *testing.T) {
	if _, err := New(Config{Procs: 2, SpaceSize: 4096, PageSize: 512, Mode: Mode(99)}); err == nil {
		t.Error("New accepted Mode(99)")
	} else if !strings.Contains(err.Error(), ModeNames()) {
		t.Errorf("error %q does not enumerate the supported modes %q", err, ModeNames())
	}
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil || !strings.Contains(err.Error(), ModeNames()) {
		t.Errorf("ParseMode(bogus) error %v does not enumerate the supported modes", err)
	}
	if Mode(99).String() != "Mode(99)" {
		t.Errorf("Mode(99).String() = %q", Mode(99).String())
	}
	if Mode(99).Valid() {
		t.Error("Mode(99) reported valid")
	}
	if want := "LI, LU, EI, EU, SC"; ModeNames() != want {
		t.Errorf("ModeNames() = %q, want %q", ModeNames(), want)
	}
}

// TestSendErrorsSurfaceOnClose: protocol errors recorded by the handler
// goroutines surface through System.Close instead of vanishing; expected
// shutdown errors (interconnect closure) stay filtered.
func TestSendErrorsSurfaceOnClose(t *testing.T) {
	s, err := New(Config{Procs: 2, SpaceSize: 4096, PageSize: 512, Mode: LazyInvalidate})
	if err != nil {
		t.Fatal(err)
	}
	n := s.Node(0)
	n.noteErr("lock 3 grant to 1", errors.New("boom"))
	n.noteErr("shutdown race", fmt.Errorf("wrapped: %w", ErrClosed))
	cerr := s.Close()
	if cerr == nil {
		t.Fatal("Close returned nil despite a recorded protocol error")
	}
	if !strings.Contains(cerr.Error(), "lock 3 grant to 1") || !strings.Contains(cerr.Error(), "boom") {
		t.Errorf("Close error %q does not carry the recorded failure", cerr)
	}
	if strings.Contains(cerr.Error(), "shutdown race") {
		t.Errorf("Close error %q surfaces an expected shutdown error", cerr)
	}
	// Idempotent: same error on every call.
	if again := s.Close(); again == nil || again.Error() != cerr.Error() {
		t.Errorf("second Close = %v, want the same error", again)
	}
}

// TestLockChainContention drives one lock through deep request chains:
// five nodes hammer the same lock simultaneously, so the manager keeps
// forwarding requests to holders that have not released yet (the
// `pending` path), and each round ends with a cached local
// reacquisition. No existing test exercised the forwarded-request chain
// with more than two contenders.
func TestLockChainContention(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		const procs, iters = 5, 20
		s, err := New(Config{Procs: procs, SpaceSize: 64 * 1024, PageSize: 1024, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		const l = mem.LockID(7)
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for k := 0; k < iters; k++ {
					if err := n.Acquire(l); err != nil {
						errs[i] = err
						return
					}
					v, err := n.ReadUint64(0)
					if err != nil {
						errs[i] = err
						return
					}
					if err := n.WriteUint64(0, v+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.Release(l); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}

		// The storm is over: whoever held the lock last reacquires it
		// locally (the `cached` path) — no lock messages may travel.
		// Find the last holder by acquiring once from node 0 first.
		n := s.Node(0)
		must(t, n.Acquire(l))
		v, err := n.ReadUint64(0)
		must(t, err)
		if v != procs*iters {
			t.Fatalf("counter = %d, want %d (lost a critical section in the chain)", v, procs*iters)
		}
		must(t, n.Release(l))
		before := s.NetStats().Messages
		must(t, n.Acquire(l))
		must(t, n.Release(l))
		if after := s.NetStats().Messages; after != before {
			t.Errorf("cached reacquisition moved %d messages, want 0", after-before)
		}
	})
}

// TestGCHomeNeverTouchedPageRegression is the regression test for the
// barrier-time GC hole: a page whose home never accesses it is modified
// across several GC epochs (lock rounds between barriers), every epoch
// discards the covered diffs, and only afterwards does a node that never
// saw the page cold-miss on it. The home must have materialized the page
// during the GC rounds — on the seed, weakening runGC's home
// materialization made exactly this sequence panic with "asked for diff
// ... it does not hold" at the diff creator.
func TestGCHomeNeverTouchedPageRegression(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		const procs = 4
		s, err := New(Config{
			Procs: procs, SpaceSize: 32 * 1024, PageSize: 1024,
			Mode: mode, GCEveryBarriers: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		// Page 6: home is node 2, which never reads or writes it.
		// Node 3 never touches it either until the very end.
		const addr = mem.Addr(6 * 1024)
		const rounds = 3
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() {
					if errs[i] != nil {
						// Unblock peers parked in the barrier or GC round,
						// so a protocol failure reports instead of hanging.
						s.Close()
					}
				}()
				n := s.Node(i)
				for r := 0; r < rounds; r++ {
					switch i {
					case 0: // the writer, under a lock
						if err := n.Acquire(0); err != nil {
							errs[i] = err
							return
						}
						if err := n.WriteUint64(addr, uint64(1000+r)); err != nil {
							errs[i] = err
							return
						}
						if err := n.Release(0); err != nil {
							errs[i] = err
							return
						}
					case 1: // a reader that pulls the diff through the lock
						if err := n.Acquire(0); err != nil {
							errs[i] = err
							return
						}
						if _, err := n.ReadUint64(addr); err != nil {
							errs[i] = err
							return
						}
						if err := n.Release(0); err != nil {
							errs[i] = err
							return
						}
					}
					// GC epoch: every covered diff is discarded.
					if err := n.Barrier(0); err != nil {
						errs[i] = err
						return
					}
				}
				if i == 3 {
					// Cold miss after the final GC: served by the home's
					// materialized copy, no pre-epoch diffs exist anymore.
					v, err := n.ReadUint64(addr)
					if err != nil {
						errs[i] = err
						return
					}
					if v != uint64(1000+rounds-1) {
						errs[i] = fmt.Errorf("cold read after GC = %d, want %d", v, 1000+rounds-1)
					}
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				// Report every node's error: the root cause (a GC
				// invariant violation, say) may sit behind the induced
				// shutdown errors of its peers.
				t.Errorf("node %d: %v", i, err)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
		var discarded int64
		for i := 0; i < procs; i++ {
			discarded += s.Node(i).Stats().DiffsDiscarded
		}
		if discarded == 0 {
			t.Error("GC discarded no diffs: the regression scenario was not reached")
		}
	})
}

// TestFalseSharingLockedCounters hammers disjoint lock-protected
// counters that share one page: the eager engines must merge concurrent
// critical sections' diffs (EI write-backs, EU updates landing on
// twins), and SC must ping-pong ownership, without losing an increment.
func TestFalseSharingLockedCounters(t *testing.T) {
	allModes(t, func(t *testing.T, mode Mode) {
		const procs, iters, counters = 4, 15, 4
		s, err := New(Config{Procs: procs, SpaceSize: 16 * 1024, PageSize: 4096, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for k := 0; k < iters; k++ {
					c := (i + k) % counters
					if err := n.Acquire(mem.LockID(c)); err != nil {
						errs[i] = err
						return
					}
					v, err := n.ReadUint64(mem.Addr(c * 512))
					if err != nil {
						errs[i] = err
						return
					}
					if err := n.WriteUint64(mem.Addr(c*512), v+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.Release(mem.LockID(c)); err != nil {
						errs[i] = err
						return
					}
				}
				errs[i] = n.Barrier(0)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
		}
		n := s.Node(0)
		for c := 0; c < counters; c++ {
			v, err := n.ReadUint64(mem.Addr(c * 512))
			must(t, err)
			if v != uint64(procs*iters/counters) {
				t.Errorf("counter %d = %d, want %d", c, v, procs*iters/counters)
			}
		}
	})
}

// TestBarrierFalseSharingChurn is the regression test for the
// directory-order race this PR fixed: every node writes its own slice of
// one page with no locks, synchronizes, and checks every slice, over
// enough rounds and trials that ownership grants, revocations and
// in-flight installs interleave heavily. (A home that read its own
// memory directly instead of queueing behind its in-flight grants served
// stale pages here roughly once per ten trials.)
func TestBarrierFalseSharingChurn(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	allModes(t, func(t *testing.T, mode Mode) {
		for trial := 0; trial < trials; trial++ {
			const procs, rounds = 4, 5
			s, err := New(Config{Procs: procs, SpaceSize: 16 * 1024, PageSize: 4096, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, procs)
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					n := s.Node(i)
					for r := 0; r < rounds; r++ {
						if err := n.WriteUint64(mem.Addr(i*512), uint64(r*100+i)); err != nil {
							errs[i] = err
							return
						}
						if err := n.Barrier(0); err != nil {
							errs[i] = err
							return
						}
						for k := 0; k < procs; k++ {
							v, err := n.ReadUint64(mem.Addr(k * 512))
							if err != nil {
								errs[i] = err
								return
							}
							if v != uint64(r*100+k) {
								errs[i] = fmt.Errorf("round %d: node %d sees slot %d = %d, want %d", r, i, k, v, r*100+k)
								return
							}
						}
						if err := n.Barrier(0); err != nil {
							errs[i] = err
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("trial %d node %d: %v", trial, i, err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatalf("trial %d Close: %v", trial, err)
			}
		}
	})
}

// TestEngineStatsMove checks that each engine's characteristic counters
// actually count: flushes and invalidations under EI, update diffs under
// EU, page ships and ownership transfers under SC.
func TestEngineStatsMove(t *testing.T) {
	run := func(mode Mode) []Stats {
		t.Helper()
		const procs = 3
		s, err := New(Config{Procs: procs, SpaceSize: 8 * 1024, PageSize: 1024, Mode: mode})
		must(t, err)
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
		}()
		var wg sync.WaitGroup
		errs := make([]error, procs)
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				n := s.Node(i)
				for r := 0; r < 3; r++ {
					if err := n.Acquire(0); err != nil {
						errs[i] = err
						return
					}
					v, err := n.ReadUint64(512)
					if err != nil {
						errs[i] = err
						return
					}
					if err := n.WriteUint64(512, v+1); err != nil {
						errs[i] = err
						return
					}
					if err := n.Release(0); err != nil {
						errs[i] = err
						return
					}
					if err := n.Barrier(0); err != nil {
						errs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range errs {
			must(t, err)
		}
		out := make([]Stats, procs)
		for i := range out {
			out[i] = s.Node(i).Stats()
		}
		return out
	}
	sum := func(sts []Stats, f func(Stats) int64) int64 {
		var total int64
		for _, st := range sts {
			total += f(st)
		}
		return total
	}

	ei := run(EagerInvalidate)
	if sum(ei, func(s Stats) int64 { return s.FlushedPages }) == 0 {
		t.Error("EI: no pages flushed")
	}
	if sum(ei, func(s Stats) int64 { return s.InvalsReceived }) == 0 {
		t.Error("EI: no invalidations received")
	}
	eu := run(EagerUpdate)
	if sum(eu, func(s Stats) int64 { return s.UpdatesReceived }) == 0 {
		t.Error("EU: no update diffs received")
	}
	sc := run(SeqConsistent)
	if sum(sc, func(s Stats) int64 { return s.PagesFetched }) == 0 {
		t.Error("SC: no pages shipped")
	}
	if sum(sc, func(s Stats) int64 { return s.OwnershipMoves }) == 0 {
		t.Error("SC: no ownership transfers")
	}
	if sum(sc, func(s Stats) int64 { return s.InvalsReceived }) == 0 {
		t.Error("SC: no invalidations received")
	}
	if sum(sc, func(s Stats) int64 { return s.IntervalsCreated })+sum(sc, func(s Stats) int64 { return s.DiffsApplied }) != 0 {
		t.Error("SC: lazy counters moved")
	}
}
