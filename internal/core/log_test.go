package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
)

// mkInterval builds an interval modifying the given pages with one 8-byte
// run each.
func mkInterval(p mem.ProcID, idx int32, clock vc.VC, pages ...mem.PageID) *Interval {
	mods := make([]*page.RangeSet, len(pages))
	for i := range mods {
		mods[i] = &page.RangeSet{}
		mods[i].Add(0, 8)
	}
	return &Interval{
		ID:    IntervalID{Proc: p, Index: idx},
		VC:    clock,
		Pages: pages,
		Mods:  mods,
	}
}

func TestLogAppendAndGet(t *testing.T) {
	l := NewLog(2)
	iv := mkInterval(0, 0, vc.VC{0, -1}, 3)
	l.Append(iv)
	if got := l.Get(IntervalID{0, 0}); got != iv {
		t.Fatal("Get did not return the appended interval")
	}
	if l.Count() != 1 {
		t.Fatalf("Count = %d, want 1", l.Count())
	}
}

func TestLogAppendOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	l := NewLog(2)
	l.Append(mkInterval(0, 5, vc.VC{5, -1}, 3))
}

func TestNoticesBetween(t *testing.T) {
	l := NewLog(2)
	l.Append(mkInterval(0, 0, vc.VC{0, -1}, 1))
	l.Append(mkInterval(0, 1, vc.VC{1, -1}, 1, 2))
	l.Append(mkInterval(1, 0, vc.VC{-1, 0}, 3))

	var seen []IntervalID
	intervals, notices := l.NoticesBetween(vc.VC{-1, -1}, vc.VC{1, 0}, func(iv *Interval) {
		seen = append(seen, iv.ID)
	})
	if intervals != 3 {
		t.Errorf("intervals = %d, want 3", intervals)
	}
	if notices != 4 { // pages: 1; 1,2; 3
		t.Errorf("notices = %d, want 4", notices)
	}
	if len(seen) != 3 {
		t.Errorf("callback saw %d intervals, want 3", len(seen))
	}

	// Partial window: only interval (0,1).
	intervals, notices = l.NoticesBetween(vc.VC{0, 0}, vc.VC{1, 0}, nil)
	if intervals != 1 || notices != 2 {
		t.Errorf("partial window: intervals=%d notices=%d, want 1, 2", intervals, notices)
	}

	// "to" beyond the log is clamped.
	intervals, _ = l.NoticesBetween(vc.VC{-1, -1}, vc.VC{99, 99}, nil)
	if intervals != 3 {
		t.Errorf("clamped window: intervals = %d, want 3", intervals)
	}
}

func TestOutstandingBasics(t *testing.T) {
	l := NewLog(3)
	l.Append(mkInterval(0, 0, vc.VC{0, -1, -1}, 7))
	l.Append(mkInterval(1, 0, vc.VC{-1, 0, -1}, 7))
	l.Append(mkInterval(1, 1, vc.VC{-1, 1, -1}, 8))

	applied := vc.New(3)
	known := vc.VC{0, 1, -1}

	out := l.Outstanding(7, applied, known, 2)
	if len(out) != 2 {
		t.Fatalf("Outstanding = %v, want two intervals", out)
	}

	// Self's intervals are excluded: processor 0 asking about page 7 must
	// not see its own interval.
	out = l.Outstanding(7, applied, known, 0)
	if len(out) != 1 || out[0].Proc != 1 {
		t.Fatalf("Outstanding for self-modifier = %v, want only p1's interval", out)
	}

	// Applied clocks filter.
	ap := vc.VC{0, 0, -1}
	out = l.Outstanding(8, ap, known, 2)
	if len(out) != 1 || out[0] != (IntervalID{1, 1}) {
		t.Fatalf("Outstanding page 8 = %v, want [1/1]", out)
	}
	out = l.Outstanding(7, ap, known, 2)
	if len(out) != 0 {
		t.Fatalf("applied filter failed: %v", out)
	}

	// Unknown page.
	if out := l.Outstanding(99, applied, known, 2); out != nil {
		t.Fatalf("unknown page Outstanding = %v, want nil", out)
	}
}

func TestHasOutstandingAgreesWithOutstanding(t *testing.T) {
	l := NewLog(3)
	l.Append(mkInterval(0, 0, vc.VC{0, -1, -1}, 1))
	l.Append(mkInterval(1, 0, vc.VC{-1, 0, -1}, 2))
	for pg := mem.PageID(0); pg < 4; pg++ {
		for self := mem.ProcID(0); self < 3; self++ {
			applied := vc.New(3)
			known := vc.VC{0, 0, -1}
			has := l.HasOutstanding(pg, applied, known, self)
			want := len(l.Outstanding(pg, applied, known, self)) > 0
			if has != want {
				t.Errorf("page %d self %d: HasOutstanding=%v, Outstanding non-empty=%v", pg, self, has, want)
			}
		}
	}
}

func TestMaximalSequentialChain(t *testing.T) {
	// p0's interval 0 happened-before p1's interval 0 (p1's clock covers
	// it): only p1's interval is maximal.
	l := NewLog(2)
	l.Append(mkInterval(0, 0, vc.VC{0, -1}, 5))
	l.Append(mkInterval(1, 0, vc.VC{0, 0}, 5))
	out := []IntervalID{{0, 0}, {1, 0}}
	max := l.Maximal(out)
	if len(max) != 1 || max[0] != (IntervalID{1, 0}) {
		t.Fatalf("Maximal = %v, want [1/0]", max)
	}
}

func TestMaximalConcurrent(t *testing.T) {
	// Two mutually concurrent intervals: both maximal.
	l := NewLog(2)
	l.Append(mkInterval(0, 0, vc.VC{0, -1}, 5))
	l.Append(mkInterval(1, 0, vc.VC{-1, 0}, 5))
	max := l.Maximal([]IntervalID{{0, 0}, {1, 0}})
	if len(max) != 2 {
		t.Fatalf("Maximal = %v, want both", max)
	}
}

func TestMaximalPerProcLatestOnly(t *testing.T) {
	// Within one processor, only the latest outstanding interval is a
	// candidate (program order dominates earlier ones).
	l := NewLog(2)
	l.Append(mkInterval(0, 0, vc.VC{0, -1}, 5))
	l.Append(mkInterval(0, 1, vc.VC{1, -1}, 5))
	max := l.Maximal([]IntervalID{{0, 0}, {0, 1}})
	if len(max) != 1 || max[0] != (IntervalID{0, 1}) {
		t.Fatalf("Maximal = %v, want [0/1]", max)
	}
}

func TestMaximalEmpty(t *testing.T) {
	l := NewLog(2)
	if got := l.Maximal(nil); got != nil {
		t.Fatalf("Maximal(nil) = %v", got)
	}
}

func TestAssignRespondersCoversAll(t *testing.T) {
	// Chain: p0/0 hb p1/0; p2/0 concurrent with both. Responders must be
	// p1 (covering p0/0 and p1/0) and p2.
	l := NewLog(3)
	l.Append(mkInterval(0, 0, vc.VC{0, -1, -1}, 5))
	l.Append(mkInterval(1, 0, vc.VC{0, 0, -1}, 5))
	l.Append(mkInterval(2, 0, vc.VC{-1, -1, 0}, 5))
	out := []IntervalID{{0, 0}, {1, 0}, {2, 0}}
	asn := l.AssignResponders(out)
	if len(asn) != 2 {
		t.Fatalf("AssignResponders = %v, want 2 responders", asn)
	}
	total := 0
	seen := map[IntervalID]int{}
	for _, a := range asn {
		total += len(a.Intervals)
		for _, id := range a.Intervals {
			seen[id]++
		}
	}
	if total != 3 {
		t.Fatalf("assigned %d intervals, want 3", total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("interval %v assigned %d times", id, n)
		}
	}
	// p1 must cover p0's interval.
	for _, a := range asn {
		if a.Responder == 1 && len(a.Intervals) != 2 {
			t.Errorf("responder p1 supplies %v, want p0/0 and p1/0", a.Intervals)
		}
	}
}

func TestCoalescedDiffBytes(t *testing.T) {
	l := NewLog(2)
	iv0 := mkInterval(0, 0, vc.VC{0, -1}, 5)  // [0,8) on page 5
	iv1 := mkInterval(1, 0, vc.VC{-1, 0}, 5)  // [0,8) on page 5 (overlaps)
	l.Append(iv0)
	l.Append(iv1)
	// Overlapping ranges coalesce: one 8-byte run.
	got := l.CoalescedDiffBytes(5, []IntervalID{{0, 0}, {1, 0}})
	want := page.DiffHeaderBytes + page.RunHeaderBytes + 8
	if got != want {
		t.Errorf("CoalescedDiffBytes = %d, want %d", got, want)
	}
	// A page none of the intervals modified: zero.
	if got := l.CoalescedDiffBytes(9, []IntervalID{{0, 0}}); got != 0 {
		t.Errorf("CoalescedDiffBytes for unmodified page = %d, want 0", got)
	}
}

func TestIntervalModsFor(t *testing.T) {
	iv := mkInterval(0, 0, vc.VC{0, -1}, 2, 5, 9)
	if iv.ModsFor(5) == nil {
		t.Error("ModsFor(5) = nil, want ranges")
	}
	if iv.ModsFor(3) != nil {
		t.Error("ModsFor(3) != nil for unmodified page")
	}
	if iv.NumNotices() != 3 {
		t.Errorf("NumNotices = %d, want 3", iv.NumNotices())
	}
	if got := iv.ID.String(); got != "0/0" {
		t.Errorf("ID.String = %q", got)
	}
}

func TestModifiersOf(t *testing.T) {
	l := NewLog(3)
	l.Append(mkInterval(0, 0, vc.VC{0, -1, -1}, 5))
	l.Append(mkInterval(2, 0, vc.VC{-1, -1, 0}, 5))
	mods := l.ModifiersOf(5)
	if len(mods) != 2 || mods[0] != 0 || mods[1] != 2 {
		t.Fatalf("ModifiersOf = %v, want [0 2]", mods)
	}
	if l.ModifiersOf(99) != nil {
		t.Fatal("ModifiersOf(unmodified) != nil")
	}
}
