package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/proto"
)

// newTestEngine builds a 4-processor engine over 16 KB / 1 KB pages.
func newTestEngine(f Flavor) *Engine {
	return NewEngine(mem.MustLayout(16384, 1024), 4, f, proto.Options{})
}

// lock 2 has manager 2 (l % n), so transfers between p0 and p3 take the
// full 3-message path of Table 1.
const testLock = mem.LockID(2)

func totalMsgs(e *Engine) int64 { return e.Stats().TotalMessages() }

func TestReleaseIsPurelyLocal(t *testing.T) {
	for _, f := range []Flavor{Invalidate, Update} {
		e := newTestEngine(f)
		e.Acquire(0, testLock)
		e.Write(0, 100, 8)
		before := totalMsgs(e)
		e.Release(0, testLock)
		if got := totalMsgs(e) - before; got != 0 {
			t.Errorf("%v: release sent %d messages, want 0 (paper §4.2)", f, got)
		}
	}
}

func TestFirstAcquireFromManagerIsTwoMessages(t *testing.T) {
	e := newTestEngine(Invalidate)
	e.Acquire(0, testLock) // manager is p2, first acquisition
	if got := totalMsgs(e); got != 2 {
		t.Errorf("first acquire = %d messages, want 2 (request + grant)", got)
	}
}

func TestLockReacquisitionIsFree(t *testing.T) {
	e := newTestEngine(Invalidate)
	e.Acquire(0, testLock)
	e.Release(0, testLock)
	before := totalMsgs(e)
	e.Acquire(0, testLock) // cached locally
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("reacquisition = %d messages, want 0", got)
	}
}

func TestRemoteAcquireIsThreeMessages(t *testing.T) {
	// Table 1: "three messages are used by all four protocols for finding
	// and transferring the lock".
	for _, f := range []Flavor{Invalidate, Update} {
		e := newTestEngine(f)
		e.Acquire(0, testLock)
		e.Release(0, testLock)
		before := totalMsgs(e)
		e.Acquire(3, testLock) // p3 -> mgr p2 -> holder p0 -> grant p3
		if got := totalMsgs(e) - before; got != 3 {
			t.Errorf("%v: remote acquire = %d messages, want 3", f, got)
		}
	}
}

func TestLIInvalidatesAtAcquire(t *testing.T) {
	e := newTestEngine(Invalidate)
	// p3 reads page 0 (cold: manager p0 supplies it, 2 messages).
	e.Read(3, 100, 4)
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Fatal("page not valid after read")
	}
	// p0 writes it inside a critical section.
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	e.Release(0, testLock)
	// p3 still sees a valid page (no synchronization yet).
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Fatal("page invalidated without synchronization")
	}
	// The acquire carries the write notice and invalidates.
	e.Acquire(3, testLock)
	valid, present := e.PageStatus(3, 100)
	if valid || !present {
		t.Fatalf("after acquire: valid=%v present=%v, want invalid but retained", valid, present)
	}
}

func TestLIMissCostsTwoMessagesPerModifier(t *testing.T) {
	// Table 1: miss = 2m, m = concurrent last modifiers.
	e := newTestEngine(Invalidate)
	e.Read(3, 100, 4) // p3 caches the page
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	e.Release(0, testLock)
	e.Acquire(3, testLock) // invalidates p3's copy
	before := totalMsgs(e)
	e.Read(3, 100, 4) // miss: one concurrent last modifier (p0)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("miss with m=1: %d messages, want 2", got)
	}
	st := e.Stats()
	if st.DiffsSent == 0 {
		t.Error("miss did not move diffs")
	}
}

func TestLIMissTwoConcurrentModifiers(t *testing.T) {
	e := newTestEngine(Invalidate)
	const l1, l2 = mem.LockID(1), mem.LockID(2)
	e.Read(3, 100, 4) // p3 caches the page

	// p0 and p1 write disjoint parts of the page under different locks:
	// their intervals are concurrent.
	e.Acquire(0, l1)
	e.Write(0, 0, 4)
	e.Release(0, l1)
	e.Acquire(1, l2)
	e.Write(1, 512, 4)
	e.Release(1, l2)

	// p3 hears about both and misses: m=2 -> 4 messages.
	e.Acquire(3, l1)
	e.Acquire(3, l2)
	before := totalMsgs(e)
	e.Read(3, 100, 4)
	if got := totalMsgs(e) - before; got != 4 {
		t.Errorf("miss with m=2: %d messages, want 4", got)
	}
}

func TestLIMissChainedModifiersContactsOnlyLast(t *testing.T) {
	// p0 writes under the lock, then p1 acquires the same lock and writes:
	// p1's interval dominates p0's, so a later miss contacts only p1
	// (m=1), who supplies both diffs.
	e := newTestEngine(Invalidate)
	e.Read(3, 100, 4)
	e.Acquire(0, testLock)
	e.Write(0, 0, 4)
	e.Release(0, testLock)
	e.Acquire(1, testLock)
	e.Write(1, 512, 4)
	e.Release(1, testLock)
	e.Acquire(3, testLock)
	before := totalMsgs(e)
	e.Read(3, 100, 4)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("chained modifiers: %d messages, want 2 (m=1)", got)
	}
}

func TestLUUpdatesAtAcquireFromReleaser(t *testing.T) {
	// LU with the releaser caching the page: diffs ride the grant, h=0,
	// so the acquire costs exactly 3 messages and the subsequent read
	// hits.
	e := newTestEngine(Update)
	e.Read(3, 100, 4)
	e.Acquire(0, testLock)
	e.Write(0, 104, 4)
	e.Release(0, testLock)
	before := totalMsgs(e)
	e.Acquire(3, testLock)
	if got := totalMsgs(e) - before; got != 3 {
		t.Errorf("LU acquire with piggybacked diffs: %d messages, want 3", got)
	}
	before = totalMsgs(e)
	e.Read(3, 100, 4)
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("read after LU update missed: %d messages", got)
	}
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Error("page not valid after LU update")
	}
}

func TestLUFetchesFromOtherModifiersWhenReleaserLacksPage(t *testing.T) {
	// p1 writes page B under lock l1; p0 (who never touched B) releases
	// lock l2 to p3, transitively carrying B's notice. p3 caches B, so LU
	// must fetch B's diff from p1: h=1 -> 2 extra messages beyond the 3.
	e := newTestEngine(Update)
	const l1, l2 = mem.LockID(1), mem.LockID(2)
	e.Read(3, 2048, 4) // p3 caches page 2 (addr 2048)

	e.Acquire(1, l1)
	e.Write(1, 2052, 4)
	e.Release(1, l1)

	e.Acquire(0, l1) // p0 learns of p1's interval (but doesn't cache page 2)
	e.Release(0, l1)
	e.Acquire(0, l2)
	e.Release(0, l2)

	before := totalMsgs(e)
	e.Acquire(3, l2) // 3 lock messages + 2h with h=1
	if got := totalMsgs(e) - before; got != 5 {
		t.Errorf("LU acquire with h=1: %d messages, want 5", got)
	}
}

func TestBarrierCosts2NMinus1ForLI(t *testing.T) {
	// Table 1: LI barrier = 2(n-1) messages, notices piggybacked.
	e := newTestEngine(Invalidate)
	e.Write(1, 100, 4) // pending modifications to propagate
	before := totalMsgs(e)
	e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
	if got := totalMsgs(e) - before; got != 6 {
		t.Errorf("LI barrier = %d messages, want 2(n-1) = 6", got)
	}
}

func TestBarrierInvalidatesForLI(t *testing.T) {
	e := newTestEngine(Invalidate)
	e.Read(3, 100, 4)
	e.Write(1, 100, 4)
	e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
	valid, present := e.PageStatus(3, 100)
	if valid || !present {
		t.Errorf("after barrier: valid=%v present=%v, want invalid retained copy", valid, present)
	}
	// The writer's own copy stays valid.
	if valid, _ := e.PageStatus(1, 100); !valid {
		t.Error("writer's own copy invalidated")
	}
}

func TestBarrierUpdatesForLU(t *testing.T) {
	// LU barrier: 2(n-1) + 2u, u = pushes from modifiers to other cachers
	// (merged per destination). One modified page cached by one other
	// processor: u=1 -> 8 messages total.
	e := newTestEngine(Update)
	e.Read(3, 100, 4)
	e.Write(1, 100, 4)
	before := totalMsgs(e)
	e.Barrier([]mem.ProcID{0, 1, 2, 3}, 0)
	if got := totalMsgs(e) - before; got != 8 {
		t.Errorf("LU barrier = %d messages, want 2(n-1)+2u = 8", got)
	}
	if valid, _ := e.PageStatus(3, 100); !valid {
		t.Error("cached page not updated at LU barrier")
	}
}

func TestWriteNoticePropagationIsTransitive(t *testing.T) {
	// p0 writes under l1; p1 acquires l1 (hears) then releases l2;
	// p2 acquires l2 and must hear about p0's write transitively (§1:
	// "preceding in the transitive sense").
	e := newTestEngine(Invalidate)
	const l1, l2 = mem.LockID(1), mem.LockID(2)
	e.Read(2, 100, 4)

	e.Acquire(0, l1)
	e.Write(0, 104, 4)
	e.Release(0, l1)

	e.Acquire(1, l1)
	e.Release(1, l1)
	e.Acquire(1, l2)
	e.Release(1, l2)

	e.Acquire(2, l2)
	valid, present := e.PageStatus(2, 100)
	if valid || !present {
		t.Errorf("transitive notice missed: valid=%v present=%v", valid, present)
	}
}

func TestVectorClockAdvancesOnlyWithModifications(t *testing.T) {
	e := newTestEngine(Invalidate)
	e.Acquire(0, testLock)
	e.Release(0, testLock) // empty interval: no tick
	if got := e.Clock(0)[0]; got != -1 {
		t.Errorf("empty interval ticked the clock: %v", e.Clock(0))
	}
	e.Acquire(0, testLock)
	e.Write(0, 100, 4)
	e.Release(0, testLock)
	if got := e.Clock(0)[0]; got != 0 {
		t.Errorf("clock after one modifying interval = %d, want 0", got)
	}
	if e.Stats().IntervalsCreated != 1 {
		t.Errorf("IntervalsCreated = %d, want 1", e.Stats().IntervalsCreated)
	}
}

func TestAcquirerClockMergesReleaser(t *testing.T) {
	e := newTestEngine(Invalidate)
	e.Acquire(0, testLock)
	e.Write(0, 100, 4)
	e.Release(0, testLock)
	e.Acquire(3, testLock)
	c := e.Clock(3)
	if c[0] != 0 {
		t.Errorf("acquirer clock %v does not cover releaser's interval", c)
	}
}

func TestColdReadOfUnwrittenPageFetchesFromManager(t *testing.T) {
	e := newTestEngine(Invalidate)
	// Page 1 (addr 1024) has manager p1; p0 cold-reads it: 2 messages.
	before := totalMsgs(e)
	e.Read(0, 1024, 4)
	if got := totalMsgs(e) - before; got != 2 {
		t.Errorf("cold miss = %d messages, want 2", got)
	}
	if e.Stats().ColdMisses != 1 {
		t.Errorf("ColdMisses = %d, want 1", e.Stats().ColdMisses)
	}
	// The manager reading its own page costs nothing.
	before = totalMsgs(e)
	e.Read(1, 1024, 4)
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("manager's own cold read = %d messages, want 0", got)
	}
}

func TestMultipleWriterNoTrafficBetweenSyncs(t *testing.T) {
	// Two processors writing disjoint halves of one page exchange no
	// messages until synchronization (§4.3.1).
	e := newTestEngine(Invalidate)
	e.Write(0, 0, 4)
	e.Write(1, 512, 4)
	before := totalMsgs(e)
	for i := 0; i < 10; i++ {
		e.Write(0, mem.Addr(4*i), 4)
		e.Write(1, mem.Addr(512+4*i), 4)
	}
	if got := totalMsgs(e) - before; got != 0 {
		t.Errorf("concurrent writers exchanged %d messages before sync, want 0", got)
	}
}

func TestExclusiveWriterAblationPingPongs(t *testing.T) {
	lay := mem.MustLayout(16384, 1024)
	e := NewEngine(lay, 4, Invalidate, proto.Options{ExclusiveWriter: true})
	e.Write(0, 0, 4)
	e.Write(1, 512, 4) // must evict p0's copy
	st := e.Stats()
	if st.InvalidationsSent == 0 {
		t.Fatal("exclusive-writer ablation sent no invalidations")
	}
	valid, _ := e.PageStatus(0, 0)
	if valid {
		t.Error("p0's copy still valid after p1's exclusive write")
	}
}

func TestNoPiggybackAblationAddsMessages(t *testing.T) {
	run := func(opts proto.Options) int64 {
		e := NewEngine(mem.MustLayout(16384, 1024), 4, Invalidate, opts)
		e.Read(3, 100, 4)
		e.Acquire(0, testLock)
		e.Write(0, 104, 4)
		e.Release(0, testLock)
		e.Acquire(3, testLock)
		return totalMsgs(e)
	}
	base := run(proto.Options{})
	ablated := run(proto.Options{NoPiggyback: true})
	if ablated != base+2 {
		t.Errorf("no-piggyback acquire = %d messages, want %d", ablated, base+2)
	}
}

func TestNoDiffsAblationShipsPages(t *testing.T) {
	run := func(opts proto.Options) int64 {
		e := NewEngine(mem.MustLayout(16384, 1024), 4, Invalidate, opts)
		e.Read(3, 100, 4)
		e.Acquire(0, testLock)
		e.Write(0, 104, 4)
		e.Release(0, testLock)
		e.Acquire(3, testLock)
		e.Read(3, 100, 4)
		return e.Stats().TotalBytes()
	}
	base := run(proto.Options{})
	ablated := run(proto.Options{NoDiffs: true})
	if ablated <= base {
		t.Errorf("no-diffs bytes %d not above diff bytes %d", ablated, base)
	}
}

func TestEngineRejectsTooManyProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("65 processors accepted")
		}
	}()
	NewEngine(mem.MustLayout(16384, 1024), 65, Invalidate, proto.Options{})
}

func TestFlavorString(t *testing.T) {
	if Invalidate.String() != "LI" || Update.String() != "LU" {
		t.Error("flavor names wrong")
	}
	if newTestEngine(Update).Name() != "LU" {
		t.Error("engine name wrong")
	}
}
