package core

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
	"repro/internal/proto"
)

// driveRandom feeds a random legal operation sequence to the engine and
// returns the procs/pages dimensions used.
func driveRandom(e *Engine, procs int, seed int64, ops int) {
	r := rand.New(rand.NewSource(seed))
	held := map[int]mem.LockID{}
	for i := 0; i < ops; i++ {
		p := mem.ProcID(r.Intn(procs))
		switch r.Intn(9) {
		case 0, 1, 2:
			e.Read(p, mem.Addr(r.Intn(15*1024)), 1+r.Intn(32))
		case 3, 4, 5:
			e.Write(p, mem.Addr(r.Intn(15*1024)), 1+r.Intn(32))
		case 6, 7:
			if l, ok := held[int(p)]; ok {
				e.Release(p, l)
				delete(held, int(p))
			} else {
				l := mem.LockID(r.Intn(4))
				free := true
				for _, hl := range held {
					if hl == l {
						free = false
					}
				}
				if free {
					e.Acquire(p, l)
					held[int(p)] = l
				}
			}
		case 8:
			if len(held) == 0 && r.Intn(5) == 0 {
				arr := make([]mem.ProcID, procs)
				for q := range arr {
					arr[q] = mem.ProcID(q)
				}
				e.Barrier(arr, 0)
			}
		}
	}
	for p, l := range held {
		e.Release(mem.ProcID(p), l)
	}
}

// checkInvariants asserts the lazy engine's structural invariants:
//
//  1. a Valid page has no outstanding write notices (LI invalidates and
//     LU updates at every synchronization point, misses at access time);
//  2. applied clocks never exceed the processor's own clock;
//  3. the engine's copyset bit is set exactly for Valid holders.
func checkInvariants(t *testing.T, e *Engine, procs int) {
	t.Helper()
	for p := 0; p < procs; p++ {
		ps := &e.procs[p]
		if !ps.v.Dominates(e.zero) {
			t.Fatalf("p%d clock below zero: %v", p, ps.v)
		}
		for pg := range ps.status {
			pgid := mem.PageID(pg)
			st := ps.status[pg]
			bit := e.copyset[pg]&(1<<uint(p)) != 0
			if (st == psValid) != bit {
				t.Fatalf("p%d page %d: status %d but copyset bit %v", p, pg, st, bit)
			}
			if a := ps.applied[pg]; a != nil {
				for q := range a {
					if a[q] > ps.v[q] {
						t.Fatalf("p%d page %d: applied %v exceeds clock %v", p, pg, a, ps.v)
					}
				}
			}
			if st == psValid {
				if e.log.HasOutstanding(pgid, e.appliedOf(ps, pgid), ps.v, mem.ProcID(p)) {
					t.Fatalf("p%d page %d: valid with outstanding notices", p, pg)
				}
			}
		}
	}
}

func TestEngineInvariantsUnderRandomLoad(t *testing.T) {
	for _, flavor := range []Flavor{Invalidate, Update} {
		for seed := int64(1); seed <= 6; seed++ {
			lay := mem.MustLayout(16*1024, 1024)
			e := NewEngine(lay, 6, flavor, proto.Options{})
			driveRandom(e, 6, seed, 1500)
			checkInvariants(t, e, 6)
		}
	}
}

func TestEngineInvariantsWithAblations(t *testing.T) {
	for _, opts := range []proto.Options{
		{NoPiggyback: true},
		{NoDiffs: true},
		{ExclusiveWriter: true},
	} {
		lay := mem.MustLayout(16*1024, 512)
		e := NewEngine(lay, 6, Invalidate, opts)
		driveRandom(e, 6, 42, 1200)
		checkInvariants(t, e, 6)
	}
}

// TestClocksRespectCausality: after a releaser-to-acquirer chain, the
// acquirer's clock dominates every releaser's clock at release time, and
// interval VCs in the log are internally consistent (VC[own] == index).
func TestClocksRespectCausality(t *testing.T) {
	lay := mem.MustLayout(16*1024, 1024)
	e := NewEngine(lay, 4, Invalidate, proto.Options{})
	driveRandom(e, 4, 7, 2000)
	log := e.Log()
	for p := 0; p < 4; p++ {
		for idx := int32(0); ; idx++ {
			if !e.Clock(mem.ProcID(p)).Covers(p, idx) {
				break
			}
			iv := log.Get(IntervalID{Proc: mem.ProcID(p), Index: idx})
			if iv.VC[p] != idx {
				t.Fatalf("interval %v: own clock entry %d != index", iv.ID, iv.VC[p])
			}
			// Monotonicity within a processor: later intervals dominate.
			if idx > 0 {
				prev := log.Get(IntervalID{Proc: mem.ProcID(p), Index: idx - 1})
				if !iv.VC.Dominates(prev.VC) {
					t.Fatalf("interval %v clock %v does not dominate predecessor %v",
						iv.ID, iv.VC, prev.VC)
				}
			}
		}
	}
}

// TestOutstandingConsistentWithNotices: for every processor and page, the
// outstanding set contains exactly the known, unapplied, non-self
// modifying intervals — cross-checked against a brute-force scan.
func TestOutstandingConsistentWithNotices(t *testing.T) {
	lay := mem.MustLayout(16*1024, 1024)
	e := NewEngine(lay, 4, Invalidate, proto.Options{})
	driveRandom(e, 4, 11, 1500)
	log := e.Log()
	for p := 0; p < 4; p++ {
		ps := &e.procs[p]
		for pg := 0; pg < lay.NumPages(); pg++ {
			pgid := mem.PageID(pg)
			applied := e.appliedOf(ps, pgid)
			got := log.Outstanding(pgid, applied, ps.v, mem.ProcID(p))
			want := map[IntervalID]bool{}
			for q := 0; q < 4; q++ {
				if q == p {
					continue
				}
				for idx := applied[q] + 1; idx <= ps.v[q]; idx++ {
					iv := log.Get(IntervalID{Proc: mem.ProcID(q), Index: idx})
					if iv.ModsFor(pgid) != nil {
						want[iv.ID] = true
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("p%d page %d: Outstanding %v vs brute force %v", p, pg, got, want)
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("p%d page %d: unexpected outstanding %v", p, pg, id)
				}
			}
		}
	}
}
