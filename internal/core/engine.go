package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/proto"
	"repro/internal/vc"
)

// Flavor selects between the two lazy data-movement policies of §4.3.2.
type Flavor int

const (
	// Invalidate: write notices invalidate cached pages at acquire time;
	// diffs are fetched on the subsequent access miss (protocol LI).
	Invalidate Flavor = iota
	// Update: diffs for all cached pages are collected at acquire time,
	// piggybacked from the releaser and fetched from other concurrent
	// last modifiers (protocol LU).
	Update
)

// String returns the protocol's short name for the flavor.
func (f Flavor) String() string {
	if f == Update {
		return "LU"
	}
	return "LI"
}

type pstatus uint8

const (
	psNoCopy pstatus = iota // never materialized locally
	psValid                 // current copy present
	psInvalid               // stale copy retained (diff target, §4.3.3)
)

// procState is one processor's view in the lazy engine.
type procState struct {
	v       vc.VC
	cur     map[mem.PageID]*page.RangeSet // current interval's modifications
	status  []pstatus
	applied []vc.VC // per page; nil means the zero clock (nothing applied)
}

// Engine is the trace-driven simulation engine for the lazy protocols LI
// and LU. It maintains full protocol state — interval log, per-processor
// vector clocks, page states and applied-clocks — and charges every
// message a real implementation would send, under the size model of
// package proto.
type Engine struct {
	layout  *mem.Layout
	n       int
	flavor  Flavor
	opts    proto.Options
	stats   proto.Stats
	log     *Log
	procs   []procState
	locks   map[mem.LockID]mem.ProcID // last releaser; absent = never held
	zero    vc.VC
	copyset []uint64 // per page: bitmask of processors with a Valid copy
}

// NewEngine constructs a lazy engine for n processors over the given
// layout. n must be at most 64 (copysets are bitmasks).
func NewEngine(layout *mem.Layout, n int, flavor Flavor, opts proto.Options) *Engine {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("core: processor count %d outside [1,64]", n))
	}
	e := &Engine{
		layout:  layout,
		n:       n,
		flavor:  flavor,
		opts:    opts,
		log:     NewLog(n),
		procs:   make([]procState, n),
		locks:   make(map[mem.LockID]mem.ProcID),
		zero:    vc.New(n),
		copyset: make([]uint64, layout.NumPages()),
	}
	e.stats.Protocol = flavor.String()
	for i := range e.procs {
		e.procs[i] = procState{
			v:       vc.New(n),
			cur:     make(map[mem.PageID]*page.RangeSet),
			status:  make([]pstatus, layout.NumPages()),
			applied: make([]vc.VC, layout.NumPages()),
		}
	}
	return e
}

// Name implements proto.Protocol.
func (e *Engine) Name() string { return e.flavor.String() }

// Stats implements proto.Protocol.
func (e *Engine) Stats() *proto.Stats { return &e.stats }

// Log exposes the interval log for tests and diagnostics.
func (e *Engine) Log() *Log { return e.log }

// Clock returns a copy of processor p's current vector clock.
func (e *Engine) Clock(p mem.ProcID) vc.VC { return e.procs[p].v.Clone() }

// PageStatus reports whether processor p currently holds a valid copy of
// the page containing addr (for tests).
func (e *Engine) PageStatus(p mem.ProcID, addr mem.Addr) (valid, present bool) {
	st := e.procs[p].status[e.layout.PageOf(addr)]
	return st == psValid, st != psNoCopy
}

func (e *Engine) appliedOf(ps *procState, pg mem.PageID) vc.VC {
	if a := ps.applied[pg]; a != nil {
		return a
	}
	return e.zero
}

// Read implements proto.Protocol.
func (e *Engine) Read(p mem.ProcID, addr mem.Addr, size int) {
	e.stats.Reads++
	ps := &e.procs[p]
	for _, pg := range e.layout.PagesOf(addr, size) {
		if ps.status[pg] != psValid {
			e.miss(p, ps, pg)
		}
	}
}

// Write implements proto.Protocol.
func (e *Engine) Write(p mem.ProcID, addr mem.Addr, size int) {
	e.stats.Writes++
	ps := &e.procs[p]
	e.layout.SplitRange(addr, size, func(pg mem.PageID, off, n int) {
		if ps.status[pg] != psValid {
			e.miss(p, ps, pg)
		}
		if e.opts.ExclusiveWriter {
			e.evictOtherCopies(p, pg)
		}
		mods := ps.cur[pg]
		if mods == nil {
			mods = &page.RangeSet{}
			ps.cur[pg] = mods
		}
		mods.Add(off, n)
	})
}

// evictOtherCopies implements the exclusive-writer ablation: before p may
// write pg, every other valid copy is invalidated with a message + ack.
func (e *Engine) evictOtherCopies(p mem.ProcID, pg mem.PageID) {
	others := e.copyset[pg] &^ (1 << uint(p))
	for q := 0; others != 0; q++ {
		bit := uint64(1) << uint(q)
		if others&bit == 0 {
			continue
		}
		others &^= bit
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.InvalBytes)
		e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.AckBytes)
		e.stats.InvalidationsSent++
		e.procs[q].status[pg] = psInvalid
		e.copyset[pg] &^= bit
	}
}

// miss services an access miss by processor p on page pg: diffs are
// collected from the concurrent last modifiers (§4.3.3); a page with no
// outstanding modifications is fetched whole from its manager (cold
// start). On return the page is valid and current with respect to p's
// clock.
func (e *Engine) miss(p mem.ProcID, ps *procState, pg mem.PageID) {
	e.stats.AccessMisses++
	cold := ps.status[pg] == psNoCopy
	if cold {
		e.stats.ColdMisses++
	}
	out := e.log.Outstanding(pg, e.appliedOf(ps, pg), ps.v, p)
	if len(out) == 0 {
		// No modifications to collect. A retained invalid copy can simply
		// be revalidated; a cold page is fetched whole from its manager
		// (the paper's §4.3.3 "a copy of the page may have to be
		// retrieved").
		if cold {
			mgr := mem.ProcID(int(pg) % e.n)
			if mgr != p {
				e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.PageReqBytes)
				e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+e.layout.PageSize())
				e.stats.PagesSent++
				e.stats.PageBytes += int64(e.layout.PageSize())
			}
		}
	} else {
		for _, a := range e.log.AssignResponders(out) {
			e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+proto.DiffReqBytes+proto.VCBytes(e.n))
			var respBytes int
			if e.opts.NoDiffs {
				respBytes = e.layout.PageSize()
				e.stats.PagesSent++
				e.stats.PageBytes += int64(e.layout.PageSize())
			} else {
				respBytes = e.log.CoalescedDiffBytes(pg, a.Intervals)
				e.stats.DiffsSent += int64(len(a.Intervals))
				e.stats.DiffBytes += int64(respBytes)
			}
			e.stats.Msg(proto.CatMiss, proto.MsgHeaderBytes+respBytes)
			if len(a.Intervals) > 1 {
				e.stats.DiffRequestsBatched++
			}
		}
	}
	ps.status[pg] = psValid
	ps.applied[pg] = ps.v.Clone()
	e.copyset[pg] |= 1 << uint(p)
}

// closeInterval ends processor p's current interval if it modified
// anything, appending the interval record (and so its write notices) to
// the log. Intervals with no modifications are skipped: they contribute no
// notices, and skipping them keeps vector clocks dense (a standard LRC
// implementation optimization).
func (e *Engine) closeInterval(p mem.ProcID) {
	ps := &e.procs[p]
	if len(ps.cur) == 0 {
		return
	}
	pages := make([]mem.PageID, 0, len(ps.cur))
	for pg := range ps.cur {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	mods := make([]*page.RangeSet, len(pages))
	for i, pg := range pages {
		mods[i] = ps.cur[pg]
	}
	idx := ps.v.Tick(int(p))
	e.log.Append(&Interval{
		ID:    IntervalID{Proc: p, Index: idx},
		VC:    ps.v.Clone(),
		Pages: pages,
		Mods:  mods,
	})
	e.stats.IntervalsCreated++
	ps.cur = make(map[mem.PageID]*page.RangeSet)
}

// Acquire implements proto.Protocol: the lock is located through its
// manager and transferred from the last releaser, with write notices (and
// for LU, the releaser's diffs) piggybacked on the grant (§4.2, Figure 4).
func (e *Engine) Acquire(p mem.ProcID, l mem.LockID) {
	e.stats.Acquires++
	e.closeInterval(p)
	ps := &e.procs[p]
	q, held := e.locks[l]
	if held && q == p {
		return // lock cached locally: reacquisition is free
	}
	mgr := mem.ProcID(int(l) % e.n)
	reqBytes := proto.MsgHeaderBytes + proto.LockReqBytes + proto.VCBytes(e.n)
	if !held {
		// First acquisition: the manager grants directly; no notices.
		if mgr != p {
			e.stats.Msg(proto.CatLock, reqBytes)
			e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.LockGrantBytes)
		}
		return
	}
	// Request to manager, forward to holder, grant to requester. Hops
	// collapse when the manager is the requester or the holder.
	if mgr != p {
		e.stats.Msg(proto.CatLock, reqBytes)
	}
	if mgr != q {
		e.stats.Msg(proto.CatLock, reqBytes)
	}
	qs := &e.procs[q]
	// Write notices the acquirer lacks, piggybacked on the grant.
	var newPages []mem.PageID
	seen := make(map[mem.PageID]bool)
	intervals, notices := e.log.NoticesBetween(ps.v, qs.v, func(iv *Interval) {
		for _, pg := range iv.Pages {
			if !seen[pg] {
				seen[pg] = true
				newPages = append(newPages, pg)
			}
		}
	})
	sort.Slice(newPages, func(i, j int) bool { return newPages[i] < newPages[j] })
	e.stats.WriteNoticesSent += int64(notices)
	grantBytes := proto.MsgHeaderBytes + proto.LockGrantBytes + proto.VCBytes(e.n)
	noticeBytes := proto.NoticesBytes(notices, intervals)
	if e.opts.NoPiggyback && notices > 0 {
		// Ablation: notices travel in their own message + ack.
		e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+noticeBytes)
		e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.AckBytes)
	} else {
		grantBytes += noticeBytes
	}
	ps.v.Max(qs.v)

	switch e.flavor {
	case Invalidate:
		for _, pg := range newPages {
			if ps.status[pg] == psValid && e.log.HasOutstanding(pg, e.appliedOf(ps, pg), ps.v, p) {
				ps.status[pg] = psInvalid
				e.copyset[pg] &^= 1 << uint(p)
			}
		}
		e.stats.Msg(proto.CatLock, grantBytes)
	case Update:
		grantBytes += e.updateAtAcquire(p, ps, q, newPages)
		e.stats.Msg(proto.CatLock, grantBytes)
	}
}

// updateAtAcquire brings every locally cached page with outstanding
// modifications up to date (LU, §4.3.2): diffs from the releaser ride the
// grant message; each *other* concurrent last modifier costs one
// request/response pair (the 2h term of Table 1). It returns the extra
// bytes piggybacked on the grant.
func (e *Engine) updateAtAcquire(p mem.ProcID, ps *procState, releaser mem.ProcID, newPages []mem.PageID) int {
	// Gather assignments for all cached pages needing updates, grouped by
	// responder so each responder is contacted once (batched across
	// pages).
	type want struct {
		pg  mem.PageID
		ids []IntervalID
	}
	perResponder := make(map[mem.ProcID][]want)
	updated := false
	for _, pg := range newPages {
		if ps.status[pg] != psValid {
			continue
		}
		out := e.log.Outstanding(pg, e.appliedOf(ps, pg), ps.v, p)
		if len(out) == 0 {
			continue
		}
		// Every outstanding interval here became known through this very
		// grant (LU keeps valid pages current at each synchronization
		// point), so the releaser's clock covers all of them. If the
		// releaser caches the page it has applied — and retains — those
		// diffs and supplies them itself on the grant message; only pages
		// the releaser does not cache need other concurrent last
		// modifiers contacted (the "other" in Table 1's h).
		if e.procs[releaser].status[pg] != psNoCopy {
			perResponder[releaser] = append(perResponder[releaser], want{pg: pg, ids: out})
		} else {
			for _, a := range e.log.AssignResponders(out) {
				perResponder[a.Responder] = append(perResponder[a.Responder], want{pg: pg, ids: a.Intervals})
			}
		}
		ps.applied[pg] = nil // set below once the snap exists
		updated = true
	}
	piggy := 0
	if updated {
		snap := ps.v.Clone()
		for _, pg := range newPages {
			if ps.status[pg] == psValid && ps.applied[pg] == nil {
				ps.applied[pg] = snap
			}
		}
	}
	responders := make([]mem.ProcID, 0, len(perResponder))
	for r := range perResponder {
		responders = append(responders, r)
	}
	sort.Slice(responders, func(i, j int) bool { return responders[i] < responders[j] })
	for _, r := range responders {
		bytes := 0
		nDiffs := 0
		for _, w := range perResponder[r] {
			if e.opts.NoDiffs {
				bytes += e.layout.PageSize()
				e.stats.PagesSent++
				e.stats.PageBytes += int64(e.layout.PageSize())
			} else {
				b := e.log.CoalescedDiffBytes(w.pg, w.ids)
				bytes += b
				e.stats.DiffBytes += int64(b)
			}
			nDiffs += len(w.ids)
		}
		e.stats.DiffsSent += int64(nDiffs)
		if r == releaser {
			piggy += bytes // rides the grant message
			continue
		}
		e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+proto.DiffReqBytes+proto.VCBytes(e.n))
		e.stats.Msg(proto.CatLock, proto.MsgHeaderBytes+bytes)
	}
	return piggy
}

// Release implements proto.Protocol. Releases are purely local in LRC
// (§4.2): the interval closes and the lock records its last releaser.
func (e *Engine) Release(p mem.ProcID, l mem.LockID) {
	e.stats.Releases++
	e.closeInterval(p)
	e.locks[l] = p
}

// Barrier implements proto.Protocol: a centralized master (processor 0)
// collects arrival messages carrying clocks and notices, merges, and
// redistributes on the exit messages — 2(n-1) messages, with notices
// piggybacked (LI) and update traffic after the episode (LU, the 2u term).
func (e *Engine) Barrier(arrivals []mem.ProcID, b mem.BarrierID) {
	e.stats.Barriers++
	const master = mem.ProcID(0)
	for _, p := range arrivals {
		e.closeInterval(p)
	}
	sentV := make([]vc.VC, e.n)
	for _, p := range arrivals {
		sentV[p] = e.procs[p].v.Clone()
	}
	mergedV := sentV[master].Clone()
	// Arrival messages, in arrival order.
	for _, p := range arrivals {
		if p == master {
			continue
		}
		intervals, notices := e.log.NoticesBetween(mergedV, sentV[p], nil)
		e.stats.WriteNoticesSent += int64(notices)
		bytes := proto.MsgHeaderBytes + proto.BarrierBytes + proto.VCBytes(e.n)
		nb := proto.NoticesBytes(notices, intervals)
		if e.opts.NoPiggyback && notices > 0 {
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+nb)
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.AckBytes)
		} else {
			bytes += nb
		}
		e.stats.Msg(proto.CatBarrier, bytes)
		mergedV.Max(sentV[p])
	}
	// Exit messages carrying what each processor lacks.
	for _, p := range arrivals {
		if p == master {
			continue
		}
		intervals, notices := e.log.NoticesBetween(sentV[p], mergedV, nil)
		e.stats.WriteNoticesSent += int64(notices)
		bytes := proto.MsgHeaderBytes + proto.BarrierBytes + proto.VCBytes(e.n)
		nb := proto.NoticesBytes(notices, intervals)
		if e.opts.NoPiggyback && notices > 0 {
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+nb)
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.AckBytes)
		} else {
			bytes += nb
		}
		e.stats.Msg(proto.CatBarrier, bytes)
	}
	for _, p := range arrivals {
		e.procs[p].v.Max(mergedV)
	}
	// Pages whose modifications someone may lack: every page noticed in an
	// interval new to at least one processor this episode.
	minSent := sentV[0].Clone()
	for _, v := range sentV[1:] {
		for i := range minSent {
			if v[i] < minSent[i] {
				minSent[i] = v[i]
			}
		}
	}
	episodePages := make(map[mem.PageID][]mem.ProcID) // page -> modifier procs (episode-new)
	e.log.NoticesBetween(minSent, mergedV, func(iv *Interval) {
		for _, pg := range iv.Pages {
			mods := episodePages[pg]
			if len(mods) == 0 || mods[len(mods)-1] != iv.ID.Proc {
				episodePages[pg] = append(mods, iv.ID.Proc)
			}
		}
	})
	pages := make([]mem.PageID, 0, len(episodePages))
	for pg := range episodePages {
		pages = append(pages, pg)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	switch e.flavor {
	case Invalidate:
		for _, pg := range pages {
			for q := 0; q < e.n; q++ {
				qp := &e.procs[q]
				if qp.status[pg] == psValid && e.log.HasOutstanding(pg, e.appliedOf(qp, pg), qp.v, mem.ProcID(q)) {
					qp.status[pg] = psInvalid
					e.copyset[pg] &^= 1 << uint(q)
				}
			}
		}
	case Update:
		e.updateAtBarrier(pages, mergedV)
	}
}

// updateAtBarrier implements LU's post-episode update pushes: each
// modifier pushes its unapplied diffs to every other processor caching a
// page it modified (the 2u term of Table 1), with all pushes from one
// modifier to one destination merged into a single message pair (Munin's
// per-destination merge, §1).
func (e *Engine) updateAtBarrier(pages []mem.PageID, mergedV vc.VC) {
	payload := make([][]int, e.n) // [creator][destination] merged bytes
	sent := make([][]bool, e.n)
	for i := range payload {
		payload[i] = make([]int, e.n)
		sent[i] = make([]bool, e.n)
	}
	snap := mergedV.Clone()
	for _, pg := range pages {
		for q := 0; q < e.n; q++ {
			qp := &e.procs[q]
			if qp.status[pg] != psValid {
				continue
			}
			out := e.log.Outstanding(pg, e.appliedOf(qp, pg), qp.v, mem.ProcID(q))
			if len(out) == 0 {
				continue
			}
			// Each modifier pushes its own episode diffs for this page.
			byCreator := make(map[mem.ProcID][]IntervalID)
			for _, id := range out {
				byCreator[id.Proc] = append(byCreator[id.Proc], id)
			}
			for c, ids := range byCreator {
				sent[c][q] = true
				if e.opts.NoDiffs {
					payload[c][q] += e.layout.PageSize()
					e.stats.PagesSent++
					e.stats.PageBytes += int64(e.layout.PageSize())
				} else {
					b := e.log.CoalescedDiffBytes(pg, ids)
					payload[c][q] += b
					e.stats.DiffBytes += int64(b)
				}
				e.stats.DiffsSent += int64(len(ids))
			}
			qp.applied[pg] = snap
		}
	}
	for c := 0; c < e.n; c++ {
		for q := 0; q < e.n; q++ {
			if !sent[c][q] {
				continue
			}
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+payload[c][q])
			e.stats.Msg(proto.CatBarrier, proto.MsgHeaderBytes+proto.AckBytes)
		}
	}
}
