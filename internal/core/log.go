// Package core implements the paper's primary contribution: lazy release
// consistency (LRC). It contains the interval and write-notice machinery
// built on the happened-before-1 partial order (§4.1–4.2), the concurrent
// last-modifier computation that drives diff movement (§4.3), and the two
// lazy protocol engines — LI (lazy invalidate) and LU (lazy update) — used
// by the trace-driven simulator. The live runtime (internal/dsm) reuses
// the same interval log and modifier computations for real data movement.
package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/page"
	"repro/internal/vc"
)

// IntervalID names one interval: the index-th interval of processor Proc.
type IntervalID struct {
	Proc  mem.ProcID
	Index int32
}

// String renders the id as "p/idx".
func (id IntervalID) String() string { return fmt.Sprintf("%d/%d", id.Proc, id.Index) }

// Interval is the record of one closed interval: its vector timestamp and
// the pages it modified (the write notices), with the modified byte ranges
// retained for diff sizing.
type Interval struct {
	ID IntervalID
	// VC is the creating processor's vector clock at the instant the
	// interval closed, including the interval's own index at VC[Proc].
	VC vc.VC
	// Pages lists the pages modified during the interval, ascending.
	Pages []mem.PageID
	// Mods holds the modified byte ranges, parallel to Pages.
	Mods []*page.RangeSet
}

// NumNotices returns the number of write notices the interval contributes
// (one per modified page).
func (iv *Interval) NumNotices() int { return len(iv.Pages) }

// ModsFor returns the modified ranges for page p, or nil if the interval
// did not modify p.
func (iv *Interval) ModsFor(p mem.PageID) *page.RangeSet {
	i := sort.Search(len(iv.Pages), func(i int) bool { return iv.Pages[i] >= p })
	if i < len(iv.Pages) && iv.Pages[i] == p {
		return iv.Mods[i]
	}
	return nil
}

// Log is the append-only store of closed intervals, indexed by processor
// and by modified page. In a real distributed system each node holds the
// subset of the log its vector clock covers; the simulator keeps one log
// and derives each node's view from its clock, which is equivalent because
// write-notice propagation maintains the invariant that a node covered by
// interval j's timestamp also knows every interval that happened before j.
type Log struct {
	n   int
	ivs [][]*Interval // [proc][index]
	// byPage[p][q] lists the interval indices of processor q that modified
	// page p, ascending (append order per processor is index order).
	byPage map[mem.PageID][][]int32
}

// NewLog creates an empty log for n processors.
func NewLog(n int) *Log {
	return &Log{
		n:      n,
		ivs:    make([][]*Interval, n),
		byPage: make(map[mem.PageID][][]int32),
	}
}

// NumProcs returns the number of processors the log covers.
func (l *Log) NumProcs() int { return l.n }

// Append stores a newly closed interval. The interval's index must be the
// next index for its processor.
func (l *Log) Append(iv *Interval) {
	p := int(iv.ID.Proc)
	if int(iv.ID.Index) != len(l.ivs[p]) {
		panic(fmt.Sprintf("core: appending interval %v but processor %d has %d intervals", iv.ID, p, len(l.ivs[p])))
	}
	l.ivs[p] = append(l.ivs[p], iv)
	for _, pg := range iv.Pages {
		hist := l.byPage[pg]
		if hist == nil {
			hist = make([][]int32, l.n)
			l.byPage[pg] = hist
		}
		hist[p] = append(hist[p], iv.ID.Index)
	}
}

// Get returns the interval with the given id, which must exist.
func (l *Log) Get(id IntervalID) *Interval {
	return l.ivs[id.Proc][id.Index]
}

// Count returns the total number of intervals stored.
func (l *Log) Count() int {
	total := 0
	for _, s := range l.ivs {
		total += len(s)
	}
	return total
}

// NoticesBetween invokes fn for every interval (r, k) with from[r] < k <=
// to[r] — the intervals a processor whose clock is `from` learns about from
// one whose clock is `to`. It returns the total interval and notice counts
// (for message sizing).
func (l *Log) NoticesBetween(from, to vc.VC, fn func(iv *Interval)) (intervals, notices int) {
	for r := 0; r < l.n; r++ {
		lo, hi := from[r], to[r]
		if hi > int32(len(l.ivs[r]))-1 {
			hi = int32(len(l.ivs[r])) - 1
		}
		for k := lo + 1; k <= hi; k++ {
			iv := l.ivs[r][k]
			intervals++
			notices += iv.NumNotices()
			if fn != nil {
				fn(iv)
			}
		}
	}
	return intervals, notices
}

// Outstanding returns the ids of every interval that modified page pg,
// is known to the inquiring processor (index <= known[creator]), and is
// not yet reflected in its copy (index > applied[creator]). self is the
// inquiring processor: its own intervals are never outstanding, because a
// processor's own writes are always present in its own copy.
func (l *Log) Outstanding(pg mem.PageID, applied, known vc.VC, self mem.ProcID) []IntervalID {
	hist := l.byPage[pg]
	if hist == nil {
		return nil
	}
	var out []IntervalID
	for q := 0; q < l.n; q++ {
		if mem.ProcID(q) == self {
			continue
		}
		idxs := hist[q]
		if len(idxs) == 0 {
			continue
		}
		lo := applied[q]
		hi := known[q]
		// First index strictly greater than lo.
		start := sort.Search(len(idxs), func(i int) bool { return idxs[i] > lo })
		for i := start; i < len(idxs) && idxs[i] <= hi; i++ {
			out = append(out, IntervalID{Proc: mem.ProcID(q), Index: idxs[i]})
		}
	}
	return out
}

// HasOutstanding reports whether Outstanding would be non-empty, without
// materializing the list.
func (l *Log) HasOutstanding(pg mem.PageID, applied, known vc.VC, self mem.ProcID) bool {
	hist := l.byPage[pg]
	if hist == nil {
		return false
	}
	for q := 0; q < l.n; q++ {
		if mem.ProcID(q) == self {
			continue
		}
		idxs := hist[q]
		if len(idxs) == 0 {
			continue
		}
		lo, hi := applied[q], known[q]
		start := sort.Search(len(idxs), func(i int) bool { return idxs[i] > lo })
		if start < len(idxs) && idxs[start] <= hi {
			return true
		}
	}
	return false
}

// ModifiersOf returns, for page pg, the processors with any interval in
// the byPage history (ever-modifiers), used by ablations and diagnostics.
func (l *Log) ModifiersOf(pg mem.PageID) []mem.ProcID {
	hist := l.byPage[pg]
	if hist == nil {
		return nil
	}
	var procs []mem.ProcID
	for q := 0; q < l.n; q++ {
		if len(hist[q]) > 0 {
			procs = append(procs, mem.ProcID(q))
		}
	}
	return procs
}

// Maximal filters an outstanding set down to its hb1-maximal members: the
// paper's "concurrent last modifiers" (§4.3.2). Within one processor only
// its latest outstanding interval can be maximal (program order), so the
// candidates are the per-processor maxima; a candidate is then excluded if
// another candidate's timestamp covers it.
func (l *Log) Maximal(out []IntervalID) []IntervalID {
	if len(out) == 0 {
		return nil
	}
	// Per-processor maximum index.
	lastByProc := make(map[mem.ProcID]int32, 4)
	for _, id := range out {
		if cur, ok := lastByProc[id.Proc]; !ok || id.Index > cur {
			lastByProc[id.Proc] = id.Index
		}
	}
	cands := make([]IntervalID, 0, len(lastByProc))
	for p, idx := range lastByProc {
		cands = append(cands, IntervalID{Proc: p, Index: idx})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Proc < cands[j].Proc })
	var maximal []IntervalID
	for _, c := range cands {
		dominated := false
		for _, d := range cands {
			if d == c {
				continue
			}
			if l.Get(d).VC.Covers(int(c.Proc), c.Index) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, c)
		}
	}
	return maximal
}

// PlanBefore reports whether interval a is applied before interval b under
// the runtime's linear extension of hb1: ascending clock sum, with
// (processor, index) as the deterministic tiebreak. This is the single
// source of apply order — the live engines sort their diff plans with it,
// and FlattenSafe uses it to decide whether merged diffs would commute
// past an interval that must sort between them.
func PlanBefore(a, b *Interval) bool {
	var sa, sb int32
	for _, v := range a.VC {
		sa += v
	}
	for _, v := range b.VC {
		sb += v
	}
	if sa != sb {
		return sa < sb
	}
	if a.ID.Proc != b.ID.Proc {
		return a.ID.Proc < b.ID.Proc
	}
	return a.ID.Index < b.ID.Index
}

// FlattenSafe reports whether the intervals of processor creator with
// indices in [first, last] selected by merged — all modifying page pg —
// can be served as one flattened diff applied at first's plan position.
//
// The flattened diff carries last's bytes for every overlapping word, so
// the merge is only sound if no other interval that the requester might
// order between the components can write the same words. Two cases:
//
//   - An interval X happened-before last (X is covered by last's clock):
//     X may overlap the components' words. If X sorts after first under
//     PlanBefore, the merge would move the components' bytes across X —
//     unsafe. X sorting before first is fine: it applies before the
//     flattened diff either way. The creator's log provably contains
//     every such X (it applied them while bringing its copy up to date
//     before closing last), so this check is complete on the server.
//
//   - An interval concurrent with the components: for properly-labeled
//     programs concurrent writers of the same page touch disjoint words
//     (otherwise a data race), so it commutes with the merge.
//
// An unmerged interval of creator itself with index inside (first, last]
// always breaks the merge: it sorts between the components by program
// order and overlap cannot be ruled out.
func (l *Log) FlattenSafe(pg mem.PageID, creator mem.ProcID, first, last int32, merged func(int32) bool) bool {
	hist := l.byPage[pg]
	if hist == nil {
		return false
	}
	ia := l.Get(IntervalID{Proc: creator, Index: first})
	ib := l.Get(IntervalID{Proc: creator, Index: last})
	for q := 0; q < l.n; q++ {
		for _, k := range hist[q] {
			if !ib.VC.Covers(q, k) {
				break // ascending indices: nothing later is covered either
			}
			if mem.ProcID(q) == creator {
				if k <= first || merged(k) {
					continue
				}
				return false
			}
			if x := l.ivs[q][k]; PlanBefore(ia, x) {
				return false
			}
		}
	}
	return true
}

// Assignment maps a responder processor to the outstanding intervals whose
// diffs it will supply.
type Assignment struct {
	Responder mem.ProcID
	Intervals []IntervalID
}

// AssignResponders distributes an outstanding set over its maximal
// modifiers: each maximal interval's creator acts as a responder and
// supplies the diffs of every outstanding interval its timestamp covers
// (it holds them: it either created them or applied them while bringing
// its own copy up to date, and retains them until garbage collection).
// Every outstanding interval is covered by at least one maximal candidate,
// so the assignment is total. Responders are returned in ascending
// processor order and each interval is assigned to exactly one responder.
func (l *Log) AssignResponders(out []IntervalID) []Assignment {
	maximal := l.Maximal(out)
	if len(maximal) == 0 {
		return nil
	}
	assigned := make(map[IntervalID]bool, len(out))
	var result []Assignment
	for _, m := range maximal {
		mvc := l.Get(m).VC
		a := Assignment{Responder: m.Proc}
		for _, id := range out {
			if assigned[id] {
				continue
			}
			if id == m || mvc.Covers(int(id.Proc), id.Index) {
				a.Intervals = append(a.Intervals, id)
				assigned[id] = true
			}
		}
		if len(a.Intervals) > 0 {
			result = append(result, a)
		}
	}
	if len(assigned) != len(out) {
		// Cannot happen: every outstanding interval is dominated by some
		// maximal candidate (see Maximal).
		panic("core: responder assignment left intervals uncovered")
	}
	return result
}

// CoalescedDiffBytes returns the wire size of the diffs a responder sends
// for one page when supplying the given intervals: overlapping ranges from
// multiple intervals of the assignment coalesce (the responder aggregates
// its retained diffs before replying), bounding resend volume by the page
// size.
func (l *Log) CoalescedDiffBytes(pg mem.PageID, ids []IntervalID) int {
	var union page.RangeSet
	found := false
	for _, id := range ids {
		if mods := l.Get(id).ModsFor(pg); mods != nil {
			union.Union(mods)
			found = true
		}
	}
	if !found {
		return 0
	}
	return page.EstimateDiffWireSize(&union)
}
