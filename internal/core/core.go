package core
