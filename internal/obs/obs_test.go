package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(`reqs_total{node="0"}`, "requests")
	c.Add(41)
	c.Inc()
	r.Counter(`reqs_total{node="1"}`, "requests").Add(7)
	g := r.Gauge("queue_depth", "depth")
	g.Set(3.5)
	r.GaugeFunc("procs", "cluster size", func() float64 { return 8 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{node="0"} 42`,
		`reqs_total{node="1"} 7`,
		"# TYPE queue_depth gauge",
		"queue_depth 3.5",
		"procs 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE once per family even with several labeled series.
	if n := strings.Count(out, "# TYPE reqs_total counter"); n != 1 {
		t.Errorf("TYPE for reqs_total emitted %d times", n)
	}
	// Idempotent re-registration returns the same cell.
	if c2 := r.Counter(`reqs_total{node="0"}`, "requests"); c2 != c {
		t.Error("re-registration returned a different cell")
	}
}

func TestRegistryHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat_seconds{node="2"}`, "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{node="2",le="0.001"} 1`,
		`lat_seconds_bucket{node="2",le="0.01"} 2`,
		`lat_seconds_bucket{node="2",le="0.1"} 3`,
		`lat_seconds_bucket{node="2",le="+Inf"} 4`,
		`lat_seconds_count{node="2"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := h.Sum(); got < 5.05 || got > 5.06 {
		t.Errorf("histogram sum = %v", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter(fmt.Sprintf(`c_total{w="%d"}`, i%4), "c")
			h := r.Histogram(fmt.Sprintf(`h_seconds{w="%d"}`, i%4), "h", []float64{1, 10})
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 20))
			}
			var sink bytes.Buffer
			r.WritePrometheus(&sink)
		}(i)
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c_total{w="0"} 2000`) {
		t.Errorf("lost counter increments:\n%s", buf.String())
	}
}

func TestTrafficRing(t *testing.T) {
	r := NewTrafficRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Push(100+i, TrafficSample{Messages: i * 10, Bytes: i * 100})
	}
	got := r.Recent()
	if len(got) != 3 {
		t.Fatalf("ring kept %d samples, want 3", len(got))
	}
	// Samples 3..5: deltas of 10 messages / 100 bytes each.
	for i, s := range got {
		if s.Messages != 10 || s.Bytes != 100 {
			t.Errorf("sample %d = %+v, want delta 10/100", i, s)
		}
		if s.Unix != 100+int64(i)+3 {
			t.Errorf("sample %d unix = %d", i, s.Unix)
		}
	}
}

func TestTrafficSampler(t *testing.T) {
	r := NewTrafficRing(16)
	var mu sync.Mutex
	total := int64(0)
	stop := r.SampleEvery(time.Millisecond, func() TrafficSample {
		mu.Lock()
		defer mu.Unlock()
		total += 5
		return TrafficSample{Messages: total}
	})
	time.Sleep(20 * time.Millisecond)
	stop()
	got := r.Recent()
	if len(got) == 0 {
		t.Fatal("sampler pushed nothing")
	}
	for i, s := range got {
		if i > 0 && s.Messages != 5 {
			t.Errorf("sample %d delta = %d, want 5", i, s.Messages)
		}
	}
}

func TestTracerRingAndChromeDump(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(int32(i%2), "sync", "cs-enter", int64(i))
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(ev))
	}
	if ev[0].Arg != 2 || ev[3].Arg != 5 {
		t.Errorf("wrong window: %+v", ev)
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 4 {
		t.Fatalf("dump has %d events, want 4", len(out.TraceEvents))
	}
	if out.TraceEvents[0]["ph"] != "i" || out.TraceEvents[0]["name"] != "cs-enter" {
		t.Errorf("unexpected event shape: %v", out.TraceEvents[0])
	}

	tr.SetEnabled(false)
	tr.Emit(0, "sync", "ignored", 0)
	if len(tr.Events()) != 4 {
		t.Error("disabled tracer recorded an event")
	}

	var nilTr *Tracer
	nilTr.Emit(0, "x", "y", 0) // must not panic
	if nilTr.Enabled() {
		t.Error("nil tracer claims enabled")
	}
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Add(3)
	tr := NewTracer(8)
	tr.Emit(1, "sync", "cs-enter", 7)
	srv, err := StartServer("127.0.0.1:0", ServerConfig{
		Registry: r,
		Tracer:   tr,
		Status:   func() any { return map[string]any{"mode": "LI", "procs": 4} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}

	if body := get("/metrics"); !strings.Contains(body, "hits_total 3") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(get("/statusz")), &status); err != nil {
		t.Fatalf("/statusz not JSON: %v", err)
	}
	if status["mode"] != "LI" {
		t.Errorf("/statusz = %v", status)
	}
	if body := get("/trace"); !strings.Contains(body, "cs-enter") {
		t.Errorf("/trace missing event:\n%s", body)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "bench", ExpBuckets(1e-5, 4, 10))
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h.Observe(float64(i%1000) * 1e-5)
			i++
		}
	})
}

func BenchmarkTracerEmitDisabled(b *testing.B) {
	tr := NewTracer(1 << 10)
	tr.SetEnabled(false)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.Emit(0, "sync", "cs-enter", 1)
		}
	})
}
