package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one recorded protocol event: a timestamp relative to the
// tracer's start, the node it happened on, a category/name pair and one
// integer argument (a lock id, a message seq, a byte count — whatever
// the site records).
type Event struct {
	NS   int64  // nanoseconds since the tracer started
	Node int32  // processor id (Chrome renders it as the pid lane)
	Cat  string // e.g. "sync", "recv", "send", "adapt"
	Name string // e.g. "cs-enter", "lockgrant", "frame"
	Arg  int64
}

// Tracer records protocol events into a bounded ring. Emit is cheap
// when disabled (one atomic load) and lock-plus-copy when enabled; the
// ring keeps the most recent events, counting what it overwrote. A nil
// *Tracer is inert: both Emit and Enabled are safe on it.
type Tracer struct {
	enabled atomic.Bool
	start   time.Time

	mu      sync.Mutex
	buf     []Event
	next    int
	filled  int
	dropped int64
}

// NewTracer returns an enabled tracer retaining up to capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	t := &Tracer{start: time.Now(), buf: make([]Event, capacity)}
	t.enabled.Store(true)
	return t
}

// SetEnabled turns event recording on or off.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether Emit currently records.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Emit records one event (dropping the oldest when the ring is full).
func (t *Tracer) Emit(node int32, cat, name string, arg int64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	e := Event{NS: int64(time.Since(t.start)), Node: node, Cat: cat, Name: name, Arg: arg}
	t.mu.Lock()
	if t.filled == len(t.buf) {
		t.dropped++
	} else {
		t.filled++
	}
	t.buf[t.next] = e
	t.next = (t.next + 1) % len(t.buf)
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.filled)
	start := t.next - t.filled
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.filled; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is the trace_event JSON shape chrome://tracing and
// Perfetto load: instant events ("ph":"i") on a per-node pid lane,
// timestamps in microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeJSON dumps the retained events as a Chrome trace_event
// JSON object ({"traceEvents":[...]}), loadable in chrome://tracing or
// Perfetto.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	events := t.Events()
	out := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		Dropped         int64         `json:"droppedEventCount,omitempty"`
	}{DisplayTimeUnit: "ms", Dropped: t.Dropped()}
	out.TraceEvents = make([]chromeEvent, len(events))
	for i, e := range events {
		out.TraceEvents[i] = chromeEvent{
			Name:  e.Name,
			Cat:   e.Cat,
			Phase: "i",
			TS:    float64(e.NS) / 1e3,
			PID:   e.Node,
			TID:   e.Node,
			Scope: "t",
			Args:  map[string]any{"arg": e.Arg},
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
