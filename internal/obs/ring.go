package obs

import (
	"sync"
	"time"
)

// TrafficSample is one interval's interconnect traffic delta: how many
// logical messages, physical frames, batch frames, wire bytes and
// pre-compression bytes moved during the sampling interval ending at
// Unix.
type TrafficSample struct {
	Unix     int64 `json:"unix"`
	Messages int64 `json:"messages"`
	Frames   int64 `json:"frames"`
	Batches  int64 `json:"batches"`
	Bytes    int64 `json:"bytes"`
	RawBytes int64 `json:"raw_bytes"`
}

func (a TrafficSample) sub(b TrafficSample) TrafficSample {
	return TrafficSample{
		Messages: a.Messages - b.Messages,
		Frames:   a.Frames - b.Frames,
		Batches:  a.Batches - b.Batches,
		Bytes:    a.Bytes - b.Bytes,
		RawBytes: a.RawBytes - b.RawBytes,
	}
}

// TrafficRing keeps the most recent traffic samples in a fixed ring:
// push cumulative totals, read back per-interval deltas, oldest first.
// Safe for concurrent use.
type TrafficRing struct {
	mu       sync.Mutex
	buf      []TrafficSample
	next     int
	filled   int
	prev     TrafficSample
	havePrev bool
}

// NewTrafficRing returns a ring holding up to capacity samples.
func NewTrafficRing(capacity int) *TrafficRing {
	if capacity <= 0 {
		capacity = 1
	}
	return &TrafficRing{buf: make([]TrafficSample, capacity)}
}

// Push records the delta between totals (a cumulative counter snapshot)
// and the previous Push, stamped with the given unix time. The first
// Push establishes the baseline and records the totals themselves (the
// delta since zero).
func (r *TrafficRing) Push(unix int64, totals TrafficSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := totals
	if r.havePrev {
		s = totals.sub(r.prev)
	}
	s.Unix = unix
	r.prev = totals
	r.havePrev = true
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.filled < len(r.buf) {
		r.filled++
	}
}

// Recent returns the retained samples, oldest first.
func (r *TrafficRing) Recent() []TrafficSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TrafficSample, 0, r.filled)
	start := r.next - r.filled
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.filled; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// SampleEvery starts a goroutine pushing totals() into the ring every
// interval. The returned stop function ends the sampler (taking one
// final sample) and waits for it to exit; it is safe to call once.
func (r *TrafficRing) SampleEvery(interval time.Duration, totals func() TrafficSample) (stop func()) {
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Push(time.Now().Unix(), totals())
			case <-done:
				r.Push(time.Now().Unix(), totals())
				return
			}
		}
	}()
	return func() {
		close(done)
		<-exited
	}
}
