// Package obs is the runtime's observability layer: a dependency-free
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text exposition, a ring buffer of per-second traffic
// samples, a bounded protocol-event tracer dumpable as Chrome
// trace_event JSON, and an optional HTTP server exposing all three
// (/metrics, /statusz, /trace).
//
// The registry is built for live publication from hot paths: counters
// and gauges are single atomics, histograms are atomic bucket arrays,
// and callback series (CounterFunc/GaugeFunc) read a value only when
// scraped — so a runtime that already keeps atomic counters (dsm's
// nodeStats, the transports' totals) exposes them with zero additional
// cost on the paths that tick them.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric cell.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (which must not be negative for Prometheus semantics).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric cell that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (atomic CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Observe is
// lock-free: a bucket increment, a count increment and a CAS-added sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start with the given growth factor — the usual latency layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// series is one registered time series: a full Prometheus series name
// (labels included), its family metadata, and how to read it.
type series struct {
	name string // e.g. `dsm_node_sent_msgs_total{node="0",kind="lockreq"}`
	fam  string // name up to '{'
	help string
	typ  string // "counter" | "gauge" | "histogram"
	read func() float64
	hist *Histogram
	obj  any // the registered cell, for idempotent re-registration
}

// Registry holds a process's metric series and renders them in
// Prometheus text exposition format. All methods are safe for
// concurrent use. A series name may embed a label block
// (`name{k="v",...}`); series sharing the text before '{' form one
// family and share HELP/TYPE metadata (the first registration wins).
type Registry struct {
	mu     sync.Mutex
	byName map[string]*series
	names  []string // registration order; sorted at exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*series)}
}

func splitName(name string) (fam string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

func (r *Registry) add(s *series) {
	r.byName[s.name] = s
	r.names = append(r.names, s.name)
}

// Counter registers (or returns the existing) counter cell named name.
// Registering an existing name as a different metric type panics: it is
// a programming error, like a duplicate flag registration.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if c, ok := s.obj.(*Counter); ok {
			return c
		}
		panic("obs: series " + name + " already registered with a different type")
	}
	c := &Counter{}
	r.add(&series{name: name, fam: splitName(name), help: help, typ: "counter",
		read: func() float64 { return float64(c.Value()) }, obj: c})
	return c
}

// Gauge registers (or returns the existing) gauge cell named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if g, ok := s.obj.(*Gauge); ok {
			return g
		}
		panic("obs: series " + name + " already registered with a different type")
	}
	g := &Gauge{}
	r.add(&series{name: name, fam: splitName(name), help: help, typ: "gauge",
		read: func() float64 { return g.Value() }, obj: g})
	return g
}

// CounterFunc registers a callback-backed counter series: fn is called
// at exposition time only, so publishing an existing atomic costs
// nothing on the path that ticks it.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "counter", fn)
}

// GaugeFunc registers a callback-backed gauge series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "gauge", fn)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic("obs: series " + name + " already registered")
	}
	r.add(&series{name: name, fam: splitName(name), help: help, typ: typ, read: fn})
}

// Histogram registers (or returns the existing) histogram named name
// with the given ascending upper bucket bounds (the +Inf bucket is
// implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if h, ok := s.obj.(*Histogram); ok {
			return h
		}
		panic("obs: series " + name + " already registered with a different type")
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.add(&series{name: name, fam: splitName(name), help: help, typ: "histogram", hist: h, obj: h})
	return h
}

// withLabel splices an extra label into a series name: f{a="b"} + le=x
// -> f_suffix{a="b",le="x"}; a bare name grows a label block.
func withLabel(name, suffix, key, val string) string {
	fam := splitName(name)
	labels := ""
	if len(fam) < len(name) {
		labels = name[len(fam)+1:len(name)-1] + ","
	}
	return fmt.Sprintf("%s%s{%s%s=%q}", fam, suffix, labels, key, val)
}

// suffixed appends a name suffix before the label block.
func suffixed(name, suffix string) string {
	fam := splitName(name)
	if len(fam) < len(name) {
		return fam + suffix + name[len(fam):]
	}
	return fam + suffix
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, families sorted by name, HELP/TYPE emitted once
// per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	byName := make(map[string]*series, len(names))
	for _, nm := range names {
		byName[nm] = r.byName[nm]
	}
	r.mu.Unlock()
	sort.Strings(names)

	lastFam := ""
	for _, nm := range names {
		s := byName[nm]
		if s.fam != lastFam {
			lastFam = s.fam
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.fam, s.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.fam, s.typ); err != nil {
				return err
			}
		}
		if s.hist != nil {
			h := s.hist
			cum := int64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(s.name, "_bucket", "le", formatValue(b)), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", withLabel(s.name, "_bucket", "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", suffixed(s.name, "_sum"), formatValue(h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", suffixed(s.name, "_count"), h.Count()); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, formatValue(s.read())); err != nil {
			return err
		}
	}
	return nil
}
