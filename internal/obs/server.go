package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// ServerConfig wires the observability endpoints: any nil piece simply
// 404s its path.
type ServerConfig struct {
	// Registry serves /metrics in Prometheus text exposition format.
	Registry *Registry
	// Status, when non-nil, is marshaled as JSON for /statusz on every
	// request — live config, routing tables, recent traffic, whatever
	// the runtime chooses to report.
	Status func() any
	// Tracer serves /trace as a Chrome trace_event JSON dump of the
	// event ring at request time.
	Tracer *Tracer
}

// Server is a running observability HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (e.g. ":9091" or "127.0.0.1:0") and
// serves /metrics, /statusz and /trace. Close shuts it down.
func StartServer(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Status == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(cfg.Status())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Tracer == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		cfg.Tracer.WriteChromeJSON(w)
	})
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
