package mem

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(4096, 1000); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := NewLayout(4096, 0); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewLayout(4096, -512); err == nil {
		t.Error("negative page size accepted")
	}
	if _, err := NewLayout(0, 512); err == nil {
		t.Error("zero space accepted")
	}
}

func TestLayoutRoundsUp(t *testing.T) {
	l := MustLayout(1000, 512)
	if l.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", l.NumPages())
	}
	if l.SpaceSize() != 1024 {
		t.Errorf("SpaceSize = %d, want 1024", l.SpaceSize())
	}
}

func TestPageOfOffsetBase(t *testing.T) {
	l := MustLayout(8192, 1024)
	cases := []struct {
		addr Addr
		page PageID
		off  int
	}{
		{0, 0, 0}, {1023, 0, 1023}, {1024, 1, 0}, {5000, 4, 904},
	}
	for _, c := range cases {
		if got := l.PageOf(c.addr); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.addr, got, c.page)
		}
		if got := l.Offset(c.addr); got != c.off {
			t.Errorf("Offset(%d) = %d, want %d", c.addr, got, c.off)
		}
	}
	if got := l.Base(3); got != 3072 {
		t.Errorf("Base(3) = %d, want 3072", got)
	}
}

func TestContains(t *testing.T) {
	l := MustLayout(2048, 1024)
	if !l.Contains(0) || !l.Contains(2047) {
		t.Error("in-range addresses rejected")
	}
	if l.Contains(-1) || l.Contains(2048) {
		t.Error("out-of-range addresses accepted")
	}
}

func TestPagesOf(t *testing.T) {
	l := MustLayout(8192, 1024)
	if got := l.PagesOf(100, 0); got != nil {
		t.Errorf("zero-size access returned pages: %v", got)
	}
	if got := l.PagesOf(1000, 100); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("straddling access pages = %v, want [0 1]", got)
	}
	if got := l.PagesOf(1024, 1024); len(got) != 1 || got[0] != 1 {
		t.Errorf("exact-page access pages = %v, want [1]", got)
	}
}

func TestSplitRange(t *testing.T) {
	l := MustLayout(8192, 1024)
	type part struct {
		p      PageID
		off, n int
	}
	var got []part
	l.SplitRange(1000, 2100, func(p PageID, off, n int) {
		got = append(got, part{p, off, n})
	})
	want := []part{{0, 1000, 24}, {1, 0, 1024}, {2, 0, 1024}, {3, 0, 28}}
	if len(got) != len(want) {
		t.Fatalf("SplitRange produced %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPropSplitRangeCoversExactly(t *testing.T) {
	l := MustLayout(1<<20, 4096)
	f := func(addrRaw uint32, sizeRaw uint16) bool {
		addr := Addr(addrRaw % (1 << 19))
		size := int(sizeRaw%20000) + 1
		total := 0
		prevEnd := addr
		l.SplitRange(addr, size, func(p PageID, off, n int) {
			if l.Base(p)+Addr(off) != prevEnd {
				t.Fatalf("non-contiguous split at page %d", p)
			}
			if off+n > l.PageSize() {
				t.Fatalf("split exceeds page: off=%d n=%d", off, n)
			}
			prevEnd += Addr(n)
			total += n
		})
		return total == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPropPageOfConsistentWithBase(t *testing.T) {
	for _, ps := range PaperPageSizes {
		l := MustLayout(1<<20, ps)
		f := func(addrRaw uint32) bool {
			addr := Addr(addrRaw % (1 << 20))
			p := l.PageOf(addr)
			return l.Base(p) <= addr && addr < l.Base(p)+Addr(l.PageSize()) &&
				addr == l.Base(p)+Addr(l.Offset(addr))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("page size %d: %v", ps, err)
		}
	}
}
