// Package mem defines the shared address space model used by every layer
// of the DSM: processor, page, lock and barrier identifiers, and the
// mapping from byte addresses to pages for a configurable page size.
//
// The paper simulates page sizes from 512 to 8192 bytes over a fixed
// shared address space; the same access trace is replayed with different
// page sizes, so the address-to-page mapping must be a pure function of
// the page size and not baked into the trace.
package mem

import "fmt"

// ProcID identifies a processor (node) in the DSM. Processors are numbered
// densely from 0 to NumProcs-1.
type ProcID int32

// PageID identifies a page of the shared address space under a particular
// page size. PageIDs are only meaningful relative to a Layout.
type PageID int32

// LockID identifies an exclusive lock synchronization object.
type LockID int32

// BarrierID identifies a barrier synchronization object.
type BarrierID int32

// Addr is a byte offset into the shared address space.
type Addr int64

// NilProc is the sentinel "no processor" value.
const NilProc ProcID = -1

// NilPage is the sentinel "no page" value.
const NilPage PageID = -1

// Standard page sizes swept by the paper's evaluation (bytes).
var PaperPageSizes = []int{512, 1024, 2048, 4096, 8192}

// Layout describes a shared address space divided into fixed-size pages.
// The zero value is not usable; construct with NewLayout.
type Layout struct {
	pageSize  int
	pageShift uint
	spaceSize Addr
	numPages  int
}

// NewLayout constructs a layout for a shared address space of spaceSize
// bytes divided into pages of pageSize bytes. pageSize must be a power of
// two; spaceSize is rounded up to a whole number of pages.
func NewLayout(spaceSize Addr, pageSize int) (*Layout, error) {
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("mem: page size %d is not a positive power of two", pageSize)
	}
	if spaceSize <= 0 {
		return nil, fmt.Errorf("mem: address space size %d must be positive", spaceSize)
	}
	shift := uint(0)
	for 1<<shift != pageSize {
		shift++
	}
	np := int((spaceSize + Addr(pageSize) - 1) >> shift)
	return &Layout{
		pageSize:  pageSize,
		pageShift: shift,
		spaceSize: Addr(np) << shift,
		numPages:  np,
	}, nil
}

// MustLayout is NewLayout that panics on error; for tests and internal
// construction from validated configuration.
func MustLayout(spaceSize Addr, pageSize int) *Layout {
	l, err := NewLayout(spaceSize, pageSize)
	if err != nil {
		panic(err)
	}
	return l
}

// PageSize returns the page size in bytes.
func (l *Layout) PageSize() int { return l.pageSize }

// NumPages returns the number of pages in the address space.
func (l *Layout) NumPages() int { return l.numPages }

// SpaceSize returns the total size of the address space in bytes
// (rounded up to a whole number of pages).
func (l *Layout) SpaceSize() Addr { return l.spaceSize }

// PageOf returns the page containing addr.
func (l *Layout) PageOf(addr Addr) PageID {
	return PageID(addr >> l.pageShift)
}

// Offset returns the byte offset of addr within its page.
func (l *Layout) Offset(addr Addr) int {
	return int(addr & Addr(l.pageSize-1))
}

// Base returns the first address of page p.
func (l *Layout) Base(p PageID) Addr {
	return Addr(p) << l.pageShift
}

// Contains reports whether addr lies inside the address space.
func (l *Layout) Contains(addr Addr) bool {
	return addr >= 0 && addr < l.spaceSize
}

// PagesOf returns every page touched by the byte range [addr, addr+size).
// A zero or negative size yields no pages.
func (l *Layout) PagesOf(addr Addr, size int) []PageID {
	if size <= 0 {
		return nil
	}
	first := l.PageOf(addr)
	last := l.PageOf(addr + Addr(size) - 1)
	pages := make([]PageID, 0, last-first+1)
	for p := first; p <= last; p++ {
		pages = append(pages, p)
	}
	return pages
}

// SplitRange splits the byte range [addr, addr+size) into per-page
// sub-ranges, invoking fn(page, offsetInPage, length) for each.
func (l *Layout) SplitRange(addr Addr, size int, fn func(p PageID, off, n int)) {
	for size > 0 {
		p := l.PageOf(addr)
		off := l.Offset(addr)
		n := l.pageSize - off
		if n > size {
			n = size
		}
		fn(p, off, n)
		addr += Addr(n)
		size -= n
	}
}
