package repro_test

import (
	"sync"
	"testing"

	"repro"
)

// TestBatchedFramesRegressionGate is the outbox's CI gate: on the
// barrier-heavy LU write-share pattern over a real loopback TCP cluster
// (the BenchmarkRuntimeBatchedBarrierTCP shape), frame batching must
// keep physical frames per critical section at least 25% below the
// unbatched run. Message counts are protocol-determined and identical
// either way, so a failure means the pipeline stopped coalescing —
// frames crept back toward one per message.
func TestBatchedFramesRegressionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("regression gate runs the full TCP pattern; skipped in short mode")
	}
	const (
		procs        = 4
		pagesPerNode = 4
		pageSize     = 1024
		regionPage   = 16 // write-share region: pages 16..31, page p homed at p%procs
		rounds       = 16
	)
	framesPerCrit := func(noBatch bool) float64 {
		trs, err := repro.NewLoopbackTCPCluster(procs)
		if err != nil {
			t.Fatal(err)
		}
		systems := make([]*repro.DSM, procs)
		for i, tr := range trs {
			systems[i], err = repro.NewDSM(repro.DSMConfig{
				Procs: procs, SpaceSize: 64 * 1024, PageSize: pageSize,
				Mode: repro.LazyUpdate, NoBatch: noBatch, Transport: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer systems[i].Close()
		}
		a := repro.NewArena(systems[0].Layout())
		counter := repro.NewVar[uint64](a)
		lock := a.NewLock()
		pageAddr := func(owner, j int) repro.Addr {
			return repro.Addr((regionPage + j*procs + owner) * pageSize)
		}
		var wg sync.WaitGroup
		run := func(body func(i int, n *repro.Node) error) {
			for i := 0; i < procs; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if err := body(i, systems[i].Node(i)); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
		}
		// Warm-up round: every node writes its pages, then caches every
		// other node's, so the measured region is steady-state
		// revalidation traffic, not cold misses.
		run(func(i int, n *repro.Node) error {
			for j := 0; j < pagesPerNode; j++ {
				if err := n.WriteUint64(pageAddr(i, j), 1); err != nil {
					return err
				}
			}
			if err := n.Barrier(0); err != nil {
				return err
			}
			for owner := 0; owner < procs; owner++ {
				for j := 0; j < pagesPerNode; j++ {
					if _, err := n.ReadUint64(pageAddr(owner, j)); err != nil {
						return err
					}
				}
			}
			return n.Barrier(0)
		})
		var before repro.TransportStats
		for _, sys := range systems {
			before.Add(sys.NetStats())
		}
		run(func(i int, n *repro.Node) error {
			for k := 0; k < rounds; k++ {
				for j := 0; j < pagesPerNode; j++ {
					if err := n.WriteUint64(pageAddr(i, j), uint64(k)+2); err != nil {
						return err
					}
				}
				if err := repro.Locked(n, lock, func() error {
					_, err := counter.Add(n, 1)
					return err
				}); err != nil {
					return err
				}
				if err := n.Barrier(0); err != nil {
					return err
				}
			}
			return nil
		})
		var after repro.TransportStats
		for _, sys := range systems {
			after.Add(sys.NetStats())
		}
		return float64(after.Frames-before.Frames) / float64(procs*rounds)
	}

	batched := framesPerCrit(false)
	unbatched := framesPerCrit(true)
	t.Logf("frames/critsec: batched %.2f, unbatched %.2f (%.0f%% reduction)",
		batched, unbatched, 100*(1-batched/unbatched))
	if unbatched <= 0 {
		t.Fatal("unbatched run moved no frames — the pattern is not exercising the interconnect")
	}
	if max := 0.75 * unbatched; batched > max {
		t.Errorf("batched run used %.2f frames/critsec, gate is %.2f (25%% below unbatched's %.2f)",
			batched, max, unbatched)
	}
}
